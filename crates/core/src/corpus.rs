//! Versioned on-disk corpus snapshots (`bvf corpus export` / `import`).
//!
//! A snapshot serializes a campaign's exchange ledger: one record per
//! lease batch carrying the corpus entries the batch retained, its
//! coverage **delta** (the points it observed first, as sorted raw
//! keys), and its finding summaries. Because per-batch deltas are
//! disjoint in batch order, the snapshot's total coverage is just their
//! union, and two snapshots merge by interleaving their batch records
//! in batch order and re-disjointing the deltas — no information about
//! worker schedules or host speed is in the file, so snapshots taken on
//! different hosts merge deterministically ([`CorpusSnapshot::merge`]).
//!
//! An imported snapshot becomes a campaign's *base* seed view
//! ([`CorpusSnapshot::to_base`] → [`CampaignConfig::base`]): every
//! batch starts from the imported corpus and measures retention against
//! the imported coverage, so a cross-host campaign spends its budget on
//! what the exporting campaign did not already reach.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use bvf_verifier::Coverage;

use crate::fuzz::{BatchOutput, BatchSeed, CampaignConfig, ShapeStats, CORPUS_CAP};
use crate::scenario::Scenario;

/// The snapshot format tag (`format` field).
pub const CORPUS_FORMAT: &str = "bvf-corpus";
/// The current snapshot format version (`version` field).
pub const CORPUS_FORMAT_VERSION: u32 = 1;

/// One finding, reduced to its stable identity for cross-host merging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotFinding {
    /// Ordering-stable dedup signature.
    pub signature: String,
    /// Global campaign iteration at which it was first seen.
    pub iteration: usize,
    /// The oracle indicator, as its debug name.
    pub indicator: String,
    /// Triaged culprit defect names (empty when untriaged).
    pub culprits: Vec<String>,
}

/// One lease batch's ledger record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotBatch {
    /// Lease batch id within the snapshot (strictly increasing).
    pub batch: usize,
    /// First global iteration of the batch in its source campaign.
    pub start: usize,
    /// Iterations the batch executed.
    pub iterations: usize,
    /// Corpus entries the batch retained and published.
    pub corpus: Vec<Scenario>,
    /// The batch's coverage delta as **sorted** raw point keys,
    /// disjoint from all earlier batches in the snapshot.
    pub coverage: Vec<u64>,
    /// Findings first recorded by this batch.
    pub findings: Vec<SnapshotFinding>,
}

/// A versioned, self-describing corpus snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSnapshot {
    /// Always [`CORPUS_FORMAT`].
    pub format: String,
    /// Always [`CORPUS_FORMAT_VERSION`] for files this build writes.
    pub version: u32,
    /// Generator name of the source campaign (`"merged"` after merging
    /// snapshots from differing generators).
    pub generator: String,
    /// Seed of the source campaign (first snapshot's seed after
    /// merging).
    pub seed: u64,
    /// Total iterations behind this snapshot (summed by merge).
    pub iterations: usize,
    /// Lease batch length of the source campaign.
    pub batch_len: usize,
    /// Corpus-exchange generation length of the source campaign, in
    /// iterations.
    pub exchange_every: usize,
    /// Per-batch ledger records, in batch order.
    pub batches: Vec<SnapshotBatch>,
}

impl CorpusSnapshot {
    /// Builds a snapshot from a campaign's batch outputs (any order;
    /// records are sorted by batch id).
    pub fn from_outputs(cfg: &CampaignConfig, outputs: &[BatchOutput]) -> CorpusSnapshot {
        let mut batches: Vec<SnapshotBatch> = outputs
            .iter()
            .map(|o| SnapshotBatch {
                batch: o.batch,
                start: o.start,
                iterations: o.iterations,
                corpus: o.fresh_corpus.iter().map(|s| (**s).clone()).collect(),
                coverage: o.cov_delta.to_sorted_points(),
                findings: o
                    .findings
                    .iter()
                    .map(|f| SnapshotFinding {
                        signature: f.signature.clone(),
                        iteration: f.iteration,
                        indicator: format!("{:?}", f.finding.indicator),
                        culprits: f.culprits.iter().map(|b| b.name().to_string()).collect(),
                    })
                    .collect(),
            })
            .collect();
        batches.sort_by_key(|b| b.batch);
        CorpusSnapshot {
            format: CORPUS_FORMAT.to_string(),
            version: CORPUS_FORMAT_VERSION,
            generator: cfg.generator.name().to_string(),
            seed: cfg.seed,
            iterations: cfg.iterations,
            batch_len: cfg.batch_len,
            exchange_every: cfg.exchange_every,
            batches,
        }
    }

    /// Checks the self-description and the batch-order invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.format != CORPUS_FORMAT {
            return Err(format!(
                "not a {CORPUS_FORMAT} file (format {:?})",
                self.format
            ));
        }
        if self.version != CORPUS_FORMAT_VERSION {
            return Err(format!(
                "unsupported {CORPUS_FORMAT} version {} (this build reads {})",
                self.version, CORPUS_FORMAT_VERSION
            ));
        }
        let mut prev: Option<usize> = None;
        for b in &self.batches {
            if prev.is_some_and(|p| p >= b.batch) {
                return Err(format!("batch ids not strictly increasing at {}", b.batch));
            }
            prev = Some(b.batch);
            if b.coverage.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("batch {} coverage not sorted/deduped", b.batch));
            }
        }
        Ok(())
    }

    /// Serializes to pretty JSON (the on-disk form).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Parses and validates a snapshot from JSON.
    pub fn from_json(text: &str) -> Result<CorpusSnapshot, String> {
        let snap: CorpusSnapshot =
            serde_json::from_str(text).map_err(|e| format!("corpus snapshot parse: {e}"))?;
        snap.validate()?;
        Ok(snap)
    }

    /// Merges snapshots (e.g. from campaigns on different hosts) into
    /// one: batch records are interleaved **by batch order** (source
    /// order breaking ties) and renumbered; coverage deltas are
    /// re-disjointed against everything earlier in the merged order, so
    /// the union invariant survives; findings keep the first record per
    /// signature in merged batch order. Deterministic in the snapshot
    /// list order, independent of where each snapshot was produced.
    ///
    /// Refuses to fold the same work twice: batches originating from
    /// the same campaign (generator + seed) must carry distinct batch
    /// ids and disjoint iteration ranges across the whole input list —
    /// importing a snapshot alongside itself, or two exports of
    /// overlapping runs, is an error, not a silently doubled corpus.
    /// Batches of *different* campaigns share ids by construction (both
    /// number from 0) and interleave fine.
    pub fn merge(snapshots: Vec<CorpusSnapshot>) -> Result<CorpusSnapshot, String> {
        // Distinct batch ids per campaign, plus each non-empty batch's
        // iteration interval. Intervals sort by (generator, seed,
        // start) — NOT batch id, which a prior renumbering merge may
        // have assigned out of iteration order — so adjacent entries
        // of one campaign are interval-adjacent and a single
        // neighbour comparison detects any overlap.
        let mut seen_ids: HashSet<(String, u64, usize)> = HashSet::new();
        let mut ranges: Vec<(String, u64, usize, usize, usize, usize)> = Vec::new();
        for (source, snap) in snapshots.iter().enumerate() {
            for b in &snap.batches {
                if !seen_ids.insert((snap.generator.clone(), snap.seed, b.batch)) {
                    return Err(format!(
                        "snapshot #{} duplicates batch {} of campaign \
                         (generator {}, seed {}) — refusing to fold the same batches twice",
                        source + 1,
                        b.batch,
                        snap.generator,
                        snap.seed
                    ));
                }
                if b.iterations > 0 {
                    ranges.push((
                        snap.generator.clone(),
                        snap.seed,
                        b.start,
                        b.start + b.iterations,
                        b.batch,
                        source,
                    ));
                }
            }
        }
        ranges.sort();
        for w in ranges.windows(2) {
            let (g1, s1, start1, end1, b1, src1) = &w[0];
            let (g2, s2, start2, _, b2, src2) = &w[1];
            if g1 == g2 && s1 == s2 && start2 < end1 {
                return Err(format!(
                    "snapshots #{} and #{} overlap: campaign (generator {g1}, seed {s1}) \
                     batch {b1} covers iterations {start1}..{end1} but batch {b2} starts \
                     at {start2} — refusing to fold overlapping runs",
                    src1 + 1,
                    src2 + 1
                ));
            }
        }
        Ok(Self::merge_unchecked(snapshots))
    }

    fn merge_unchecked(snapshots: Vec<CorpusSnapshot>) -> CorpusSnapshot {
        let generator = {
            let mut names: Vec<&str> = snapshots.iter().map(|s| s.generator.as_str()).collect();
            names.dedup();
            match names.as_slice() {
                [one] => one.to_string(),
                _ => "merged".to_string(),
            }
        };
        let seed = snapshots.first().map_or(0, |s| s.seed);
        let batch_len = snapshots.first().map_or(0, |s| s.batch_len);
        let exchange_every = snapshots.first().map_or(0, |s| s.exchange_every);
        let iterations = snapshots.iter().map(|s| s.iterations).sum();

        let mut records: Vec<(usize, usize, SnapshotBatch)> = Vec::new();
        for (source, snap) in snapshots.into_iter().enumerate() {
            for b in snap.batches {
                records.push((b.batch, source, b));
            }
        }
        records.sort_by_key(|&(batch, source, _)| (batch, source));

        let mut seen_points: HashSet<u64> = HashSet::new();
        let mut seen_sigs: HashSet<String> = HashSet::new();
        let batches = records
            .into_iter()
            .enumerate()
            .map(|(id, (_, _, mut b))| {
                b.batch = id;
                b.coverage.retain(|&p| seen_points.insert(p));
                b.findings.retain(|f| seen_sigs.insert(f.signature.clone()));
                b
            })
            .collect();
        CorpusSnapshot {
            format: CORPUS_FORMAT.to_string(),
            version: CORPUS_FORMAT_VERSION,
            generator,
            seed,
            iterations,
            batch_len,
            exchange_every,
            batches,
        }
    }

    /// Union of the per-batch coverage deltas.
    pub fn coverage(&self) -> Coverage {
        Coverage::from_points(self.batches.iter().flat_map(|b| b.coverage.iter().copied()))
    }

    /// Total corpus entries across batches.
    pub fn corpus_len(&self) -> usize {
        self.batches.iter().map(|b| b.corpus.len()).sum()
    }

    /// The distinct finding signatures the snapshot carries.
    pub fn finding_signatures(&self) -> BTreeSet<String> {
        self.batches
            .iter()
            .flat_map(|b| b.findings.iter().map(|f| f.signature.clone()))
            .collect()
    }

    /// Converts the snapshot into a campaign base seed view
    /// ([`CampaignConfig::base`]): corpus entries in batch order
    /// (capped at [`CORPUS_CAP`]) plus the union coverage.
    pub fn to_base(&self) -> BatchSeed {
        let corpus = self
            .batches
            .iter()
            .flat_map(|b| b.corpus.iter())
            .take(CORPUS_CAP)
            .map(|s| Arc::new(s.clone()))
            .collect();
        // Snapshots predate shape accounting; an imported base starts
        // steering from uniform weights.
        BatchSeed {
            corpus,
            coverage: Arc::new(self.coverage()),
            shapes: ShapeStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::GeneratorKind;
    use crate::fuzz::{
        batch_count, merge_batches, run_campaign, CampaignWorker, CorpusLedger, SerialDedup,
    };
    use bvf_runtime::ExecScratch;
    use bvf_telemetry::Telemetry;

    /// Runs a small campaign through the public batch pieces and
    /// returns its outputs (the serial drivers do not expose them).
    fn campaign_outputs(cfg: &CampaignConfig) -> Vec<BatchOutput> {
        let dedup = SerialDedup::default();
        let mut ledger = CorpusLedger::new(cfg);
        let mut scratch = ExecScratch::new();
        let mut tel = Telemetry::null();
        let mut outputs = Vec::new();
        for b in 0..batch_count(cfg) {
            let seed = ledger.seed_for(cfg, b);
            let mut w = CampaignWorker::lease(cfg.clone(), b, seed);
            while w.step(&mut tel, &dedup, &mut scratch) {}
            let out = w.into_output();
            ledger.publish(b, out.ledger_entry());
            outputs.push(out);
        }
        outputs
    }

    fn small_config(iters: usize, seed: u64) -> CampaignConfig {
        CampaignConfig {
            batch_len: 32,
            exchange_every: 64,
            ..CampaignConfig::new(GeneratorKind::Bvf, iters, seed)
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let cfg = small_config(96, 7);
        let outputs = campaign_outputs(&cfg);
        let snap = CorpusSnapshot::from_outputs(&cfg, &outputs);
        assert!(snap.validate().is_ok());
        assert!(snap.corpus_len() > 0, "campaign retained nothing");
        let back = CorpusSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(snap.coverage(), back.coverage());
    }

    #[test]
    fn snapshot_coverage_matches_campaign_coverage() {
        let cfg = small_config(96, 7);
        let outputs = campaign_outputs(&cfg);
        let snap = CorpusSnapshot::from_outputs(&cfg, &outputs);
        let (result, _) = merge_batches(&cfg, outputs);
        assert_eq!(snap.coverage(), result.coverage);
        assert_eq!(snap.corpus_len(), result.corpus_len);
    }

    #[test]
    fn merged_snapshot_carries_the_union_of_findings() {
        let a_cfg = small_config(160, 11);
        let b_cfg = small_config(160, 1234);
        let a = CorpusSnapshot::from_outputs(&a_cfg, &campaign_outputs(&a_cfg));
        let b = CorpusSnapshot::from_outputs(&b_cfg, &campaign_outputs(&b_cfg));
        let union: BTreeSet<String> = a
            .finding_signatures()
            .union(&b.finding_signatures())
            .cloned()
            .collect();
        let merged = CorpusSnapshot::merge(vec![a.clone(), b.clone()]).expect("disjoint seeds");
        assert!(merged.validate().is_ok());
        assert_eq!(merged.finding_signatures(), union);
        assert_eq!(merged.iterations, a.iterations + b.iterations);
        // Coverage deltas re-disjointed: union equals merged coverage.
        let mut expect = a.coverage();
        expect.merge(&b.coverage());
        assert_eq!(merged.coverage(), expect);
        // Batch ids renumbered strictly increasing from 0.
        for (i, batch) in merged.batches.iter().enumerate() {
            assert_eq!(batch.batch, i);
        }
    }

    #[test]
    fn merge_rejects_the_same_snapshot_twice() {
        let cfg = small_config(96, 7);
        let snap = CorpusSnapshot::from_outputs(&cfg, &campaign_outputs(&cfg));
        let err = CorpusSnapshot::merge(vec![snap.clone(), snap]).unwrap_err();
        assert!(err.contains("duplicates batch"), "unhelpful error: {err}");
        assert!(
            err.contains("seed 7"),
            "error must identify the campaign: {err}"
        );
    }

    #[test]
    fn merge_rejects_overlapping_runs_of_one_campaign() {
        // Two exports of the same campaign whose iteration ranges
        // overlap, disguised with distinct batch ids (as after a prior
        // renumbering merge): still the same work twice.
        let cfg = small_config(96, 7);
        let snap = CorpusSnapshot::from_outputs(&cfg, &campaign_outputs(&cfg));
        let mut shifted = snap.clone();
        for b in &mut shifted.batches {
            b.batch += snap.batches.len();
        }
        let err = CorpusSnapshot::merge(vec![snap, shifted]).unwrap_err();
        assert!(err.contains("overlap"), "unhelpful error: {err}");
    }

    #[test]
    fn merge_accepts_disjoint_exports_with_renumbered_batch_ids() {
        // Two disjoint exports of one campaign whose batch ids were
        // renumbered out of iteration order (as after a prior merge):
        // the overlap check compares iteration intervals, not batch id
        // order, so these must merge instead of being falsely rejected.
        let cfg = small_config(96, 7);
        let snap = CorpusSnapshot::from_outputs(&cfg, &campaign_outputs(&cfg));
        assert!(snap.batches.len() >= 3, "need three batches to split");

        // Export A: the last and first batches as ids 0 and 1 — id
        // order now disagrees with iteration order.
        let mut a = snap.clone();
        a.batches = vec![snap.batches[2].clone(), snap.batches[0].clone()];
        a.batches[0].batch = 0;
        a.batches[1].batch = 1;
        a.iterations = a.batches.iter().map(|b| b.iterations).sum();
        // Export B: the middle batch.
        let mut b = snap.clone();
        b.batches = vec![snap.batches[1].clone()];
        b.batches[0].batch = 2;
        b.iterations = b.batches.iter().map(|b| b.iterations).sum();

        let merged = CorpusSnapshot::merge(vec![a, b])
            .expect("disjoint iteration ranges must merge regardless of batch id order");
        assert!(merged.validate().is_ok());
        assert_eq!(merged.iterations, snap.iterations);
        assert_eq!(merged.coverage(), snap.coverage());
    }

    #[test]
    fn imported_base_gates_retention() {
        // A campaign re-run on top of its own snapshot must retain
        // (almost) nothing new: its coverage was already credited.
        let cfg = small_config(96, 7);
        let snap = CorpusSnapshot::from_outputs(&cfg, &campaign_outputs(&cfg));
        let baseline = run_campaign(&cfg);
        let seeded_cfg = CampaignConfig {
            base: snap.to_base(),
            ..cfg.clone()
        };
        let seeded = run_campaign(&seeded_cfg);
        assert!(
            seeded.coverage.len() < baseline.coverage.len() / 4,
            "imported coverage should gate retention: {} vs {}",
            seeded.coverage.len(),
            baseline.coverage.len()
        );
    }

    #[test]
    fn validate_rejects_foreign_and_future_files() {
        let cfg = small_config(32, 1);
        let mut snap = CorpusSnapshot::from_outputs(&cfg, &[]);
        snap.format = "something-else".to_string();
        assert!(snap.validate().is_err());
        snap.format = CORPUS_FORMAT.to_string();
        snap.version = CORPUS_FORMAT_VERSION + 1;
        assert!(snap.validate().is_err());
    }
}
