//! The `bvf` command-line tool.
//!
//! ```text
//! bvf fuzz    [--iters N] [--seed S] [--generator bvf|syzkaller|buzzer|buzzer-random]
//!             [--bugs all|none|<name,...>] [--version v5.15|v6.1|bpf-next]
//!             [--no-sanitize] [--no-triage] [--save-findings DIR]
//! bvf replay  <scenario.json> [--bugs ...] [--version ...] [--no-sanitize]
//! bvf disasm  <scenario.json | program.bin>
//! bvf bugs    # list injectable defects
//! ```
//!
//! Findings saved by `fuzz --save-findings` are replayable scenario JSON
//! files; `replay` re-executes one deterministically and prints the
//! verifier verdict, kernel reports, and differential triage.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::exit;

use bvf::baseline::GeneratorKind;
use bvf::fuzz::{run_campaign, CampaignConfig};
use bvf::oracle::{judge, triage};
use bvf::scenario::{run_scenario, Scenario};
use bvf_kernel_sim::{BugId, BugSet};
use bvf_verifier::KernelVersion;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         bvf fuzz   [--iters N] [--seed S] [--generator G] [--bugs SPEC] [--version V]\n             \
         [--no-sanitize] [--no-triage] [--save-findings DIR]\n  \
         bvf replay <scenario.json> [--bugs SPEC] [--version V] [--no-sanitize]\n  \
         bvf disasm <scenario.json|program.bin>\n  \
         bvf bugs"
    );
    exit(2)
}

struct Args(Vec<String>);

impl Args {
    fn opt(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

fn parse_bugs(spec: &str) -> BugSet {
    match spec {
        "all" => BugSet::all(),
        "none" => BugSet::none(),
        list => {
            let by_name: BTreeMap<&str, BugId> =
                BugId::ALL.iter().map(|b| (b.name(), *b)).collect();
            let mut set = BugSet::none();
            for part in list.split(',') {
                match by_name
                    .iter()
                    .find(|(n, _)| **n == part || n.contains(part))
                {
                    Some((_, bug)) => set.enable(*bug),
                    None => {
                        eprintln!("unknown bug {part:?}; see `bvf bugs`");
                        exit(2);
                    }
                }
            }
            set
        }
    }
}

fn parse_version(spec: &str) -> KernelVersion {
    match spec {
        "v5.15" | "5.15" => KernelVersion::V5_15,
        "v6.1" | "6.1" => KernelVersion::V6_1,
        "bpf-next" | "next" => KernelVersion::BpfNext,
        other => {
            eprintln!("unknown kernel version {other:?}");
            exit(2);
        }
    }
}

fn parse_generator(spec: &str) -> GeneratorKind {
    match spec {
        "bvf" => GeneratorKind::Bvf,
        "syzkaller" => GeneratorKind::Syzkaller,
        "buzzer" => GeneratorKind::BuzzerAluJmp,
        "buzzer-random" => GeneratorKind::BuzzerRandom,
        other => {
            eprintln!("unknown generator {other:?}");
            exit(2);
        }
    }
}

fn cmd_bugs() {
    println!("{:34} {:10} injectable defects", "name", "component");
    for bug in BugId::ALL {
        println!(
            "{:34} {:10} {}",
            bug.name(),
            if bug.is_verifier_bug() {
                "verifier"
            } else {
                "kernel"
            },
            if BugId::VERIFIER_CORRECTNESS.contains(&bug) {
                "Table 2 correctness bug"
            } else if bug == BugId::CveAluOnNullablePtr {
                "CVE-2022-23222 (Listing 1)"
            } else {
                "Table 2 component bug"
            }
        );
    }
}

fn cmd_fuzz(args: &Args) {
    let iters: usize = args
        .opt("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000);
    let seed: u64 = args.opt("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let mut cfg = CampaignConfig::new(
        args.opt("--generator")
            .map(parse_generator)
            .unwrap_or(GeneratorKind::Bvf),
        iters,
        seed,
    );
    cfg.bugs = args
        .opt("--bugs")
        .map(parse_bugs)
        .unwrap_or_else(BugSet::all);
    cfg.version = args
        .opt("--version")
        .map(parse_version)
        .unwrap_or(KernelVersion::BpfNext);
    cfg.sanitize = !args.flag("--no-sanitize");
    cfg.triage = !args.flag("--no-triage");

    eprintln!(
        "fuzzing: {} iterations, generator {}, {} defects injected, sanitation {}",
        cfg.iterations,
        cfg.generator.name(),
        cfg.bugs.iter().count(),
        if cfg.sanitize { "on" } else { "off" }
    );
    let r = run_campaign(&cfg);
    println!(
        "iterations {}  accepted {} ({:.1}%)  coverage {}  corpus {}",
        r.iterations,
        r.accepted,
        100.0 * r.acceptance_rate(),
        r.coverage.len(),
        r.corpus_len
    );
    for rec in &r.findings {
        println!(
            "\nfinding at iteration {} — indicator {:?}, culprits {:?}",
            rec.iteration, rec.finding.indicator, rec.culprits
        );
        for rep in &rec.finding.reports {
            println!("  {}", rep.summary());
        }
    }
    if r.findings.is_empty() {
        println!("no findings");
    }

    if let Some(dir) = args.opt("--save-findings") {
        std::fs::create_dir_all(dir).expect("create findings dir");
        for (i, rec) in r.findings.iter().enumerate() {
            let path = Path::new(dir).join(format!("finding-{i:03}.json"));
            let json = serde_json::to_string_pretty(&rec.finding.scenario).unwrap();
            std::fs::write(&path, json).expect("write finding");
            println!("saved {}", path.display());
        }
    }
}

fn load_scenario(path: &str) -> Scenario {
    let data = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    if path.ends_with(".json") {
        serde_json::from_slice(&data).unwrap_or_else(|e| {
            eprintln!("cannot parse scenario: {e}");
            exit(1);
        })
    } else {
        // Raw instruction bytes; run as a socket filter test run.
        let prog = bvf_isa::Program::from_bytes(&data).unwrap_or_else(|| {
            eprintln!("program length must be a multiple of 8 bytes");
            exit(1);
        });
        Scenario::test_run(prog, bvf_kernel_sim::progtype::ProgType::SocketFilter)
    }
}

fn cmd_replay(args: &Args, path: &str) {
    let scenario = load_scenario(path);
    let bugs = args
        .opt("--bugs")
        .map(parse_bugs)
        .unwrap_or_else(BugSet::all);
    let version = args
        .opt("--version")
        .map(parse_version)
        .unwrap_or(KernelVersion::BpfNext);
    let sanitize = !args.flag("--no-sanitize");

    println!(
        "program ({:?}, trigger {:?}):\n{}",
        scenario.prog_type,
        scenario.trigger,
        scenario.prog.dump()
    );
    let out = run_scenario(&scenario, &bugs, version, sanitize);
    match &out.load {
        Ok(_) => println!(
            "verifier: ACCEPTED ({} insns processed)",
            out.verifier_insns
        ),
        Err(e) => println!("verifier: REJECTED — {e}"),
    }
    if out.attach_rejected {
        println!("attach: REFUSED");
    }
    if let Some(h) = out.halt {
        println!("execution halted: {h:?}");
    }
    for r in &out.reports {
        println!("report: {}", r.summary());
    }
    if let Some(f) = judge(&scenario, &out) {
        println!(
            "\noracle: indicator {:?} triggered — running triage...",
            f.indicator
        );
        let culprits = triage(&f, &bugs, version, sanitize);
        println!("culprits: {culprits:?}");
    } else {
        println!("\noracle: no finding");
    }
}

fn cmd_disasm(path: &str) {
    let scenario = load_scenario(path);
    println!("{}", scenario.prog.dump());
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().map(|s| s.as_str()) else {
        usage()
    };
    let args = Args(argv.clone());
    match cmd {
        "fuzz" => cmd_fuzz(&args),
        "replay" => match argv.get(1) {
            Some(p) if !p.starts_with("--") => cmd_replay(&args, p),
            _ => usage(),
        },
        "disasm" => match argv.get(1) {
            Some(p) => cmd_disasm(p),
            None => usage(),
        },
        "bugs" => cmd_bugs(),
        _ => usage(),
    }
}
