//! The `bvf` command-line tool.
//!
//! ```text
//! bvf fuzz    [--iters N] [--seed S] [--generator bvf|syzkaller|buzzer|buzzer-random]
//!             [--bugs all|none|<name,...>] [--version v5.15|v6.1|bpf-next]
//!             [--no-sanitize] [--no-triage] [--no-feedback] [--diff-oracle] [--steer]
//!             [--san-diff] [--san-defect LIST] [--backend interp|compiled]
//!             [--workers N] [--batch-len N] [--exchange-every N] [--exchange-batch N]
//!             [--chaos S] [--corpus-in FILE] [--corpus-out FILE]
//!             [--trace-out FILE] [--json-out FILE] [--stats-every N]
//!             [--snapshot-every N] [--save-findings DIR]
//! bvf serve   --listen ADDR [--state DIR] [--lease-timeout SECS]
//! bvf worker  --connect ADDR [--poll-ms N] [--max-batches N] [--backend interp|compiled]
//! bvf report  <trace.jsonl>
//! bvf corpus export --out FILE [fuzz options]
//! bvf corpus import <snap.json>... [--out FILE]
//! bvf corpus info   <snap.json>
//! bvf replay  <scenario.json> [--bugs ...] [--version ...] [--no-sanitize]
//!             [--diff-oracle] [--san-diff] [--san-defect LIST] [--backend B]
//! bvf minimize <scenario.json> [--bugs ...] [--version ...] [--no-sanitize]
//!             [--diff-oracle] [--san-diff] [--san-defect LIST] [--out FILE] [--backend B]
//! bvf sancheck [--matrix] [--version ...] [--json-out FILE] [--backend B]
//! bvf disasm  <scenario.json | program.bin>
//! bvf bugs    # list injectable defects
//! ```
//!
//! Findings saved by `fuzz --save-findings` are replayable scenario JSON
//! files; `replay` re-executes one deterministically and prints the
//! verifier verdict, kernel reports, the dedup signature, and
//! differential triage. `minimize` delta-debugs a finding's program
//! down to the instructions its signature depends on (non-essential
//! units become `ja +0` no-ops, so slot counts and jump offsets are
//! preserved) and writes the minimized scenario JSON.
//! `--trace-out` writes one JSONL event per campaign step and
//! `--json-out` writes the machine-readable `CampaignStats` summary
//! (the same schema the bench binaries emit).
//!
//! `--steer` turns on deterministic acceptance-rate steering: fresh
//! generations pick a generation *shape* (the native generator, a
//! minimal program, an ALU/JMP body, or stack-safe memory traffic)
//! weighted by the per-shape acceptance observed in earlier corpus
//! exchange generations. The weights are folded through the exchange
//! ledger in batch order, so steered campaigns remain bit-identical at
//! any `--workers` count. `bvf report` reads a `--trace-out` file back
//! and prints the rejection-reason breakdown (the verifier's typed
//! taxonomy) and per-shape acceptance rates; it exits nonzero on a
//! malformed trace.
//!
//! `--diff-oracle` arms the abstract-vs-concrete differential oracle
//! (Indicator #3): the verifier exports per-instruction abstract-state
//! snapshots, the interpreter records a concrete register trace, and
//! any concrete value escaping the proved abstract state is reported as
//! a state divergence. Replay and minimize must be given the same flag
//! to reproduce Indicator #3 findings.
//!
//! `--backend interp|compiled` picks the execution engine. `compiled`
//! (the `fuzz`/`worker` default) lowers each verifier-accepted image
//! once into a closure-compiled direct-threaded program — operands
//! pre-resolved, sanitation dispatch fused into the memory-op thunks —
//! and is execution-equivalent to the interpreter: findings, step
//! counts, exec hashes, and oracle verdicts are byte-identical across
//! backends, so the flag is a throughput knob, never a result knob.
//! One-shot `replay`/`minimize`/`sancheck` default to `interp`, where
//! compiling a program run once would be pure overhead.
//!
//! `--workers N` runs the campaign's lease batches across N
//! work-stealing threads (0 = one per available CPU) with merged
//! results bit-identical to `--workers 1` on the same seed; `--chaos S`
//! adds deterministic per-batch scheduling jitter (for shaking out
//! schedule dependence — results must not change). `--batch-len`,
//! `--exchange-every` and `--exchange-batch` set the lease-batch
//! geometry and corpus-exchange cadence; they are campaign inputs, so
//! changing them changes the result (worker count never does). With
//! multiple workers the trace is worker-tagged and interleaved by
//! iteration, and progress lines go through one shared writer.
//!
//! `bvf serve` starts the distributed campaign-fabric coordinator
//! (`bvf-fabric`): workers attach with `bvf worker --connect`, clients
//! submit campaigns with `fuzz --remote ADDR` using the same campaign
//! flags as a local run. Batch leases, corpus-exchange deltas, and
//! finding-dedup claims travel the wire, and the merged result —
//! including under worker churn — is bit-identical to running the same
//! config locally (`--json-out` files differ only in the observational
//! `metrics` member). `--state DIR` persists the fabric-wide dedup
//! claims log and per-campaign stats across coordinator restarts.
//!
//! `bvf corpus export` runs a campaign (same flags as `fuzz`) and
//! writes a versioned corpus snapshot — per lease batch, the retained
//! scenarios, the coverage delta, and finding summaries. `import`
//! merges snapshots from different hosts by batch order into one;
//! `fuzz --corpus-in` seeds a new campaign from a snapshot (its corpus
//! becomes every batch's mutation base and its coverage gates
//! retention, so the new campaign hunts only what the old one missed).
//! `fuzz --corpus-out` is `export` inline.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use bvf::baseline::GeneratorKind;
use bvf::corpus::CorpusSnapshot;
use bvf::fuzz::{
    report_signature, run_campaign_with_telemetry, CampaignConfig, CampaignResult, FindingRecord,
};
use bvf::minimize::{minimize_finding_jobs, minimize_finding_san};
use bvf::oracle::{judge, triage_san_defects, triage_with_defects};
use bvf::sanmatrix::run_matrix;
use bvf::scenario::{
    run_scenario_backend, run_scenario_diff_backend, run_scenario_san_diff_backend, Scenario,
};
use bvf_campaign::{run_sharded, ParallelConfig};
use bvf_fabric::{run_worker, Client, Coordinator, CoordinatorOptions, FabricError, WorkerOptions};
use bvf_kernel_sim::{BugId, BugSet, KernelReport, SanDefect, SanDefectSet};
use bvf_runtime::Backend;
use bvf_telemetry::{JsonlSink, NullSink, Registry, Telemetry, TraceEvent, TraceSink};
use bvf_verifier::KernelVersion;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         bvf fuzz   [--iters N] [--seed S] [--generator G] [--bugs SPEC] [--version V]\n             \
         [--no-sanitize] [--no-triage] [--no-feedback] [--diff-oracle] [--steer]\n             \
         [--san-diff] [--san-defect LIST] [--backend interp|compiled] [--workers N]\n             \
         [--batch-len N] [--exchange-every N] [--exchange-batch N]\n             \
         [--chaos S] [--corpus-in FILE] [--corpus-out FILE]\n             \
         [--trace-out FILE] [--json-out FILE] [--stats-every N]\n             \
         [--snapshot-every N] [--save-findings DIR] [--remote ADDR]\n  \
         bvf serve --listen ADDR [--state DIR] [--lease-timeout SECS]\n  \
         bvf worker --connect ADDR [--poll-ms N] [--max-batches N] [--backend B]\n  \
         bvf report <trace.jsonl>\n  \
         bvf corpus export --out FILE [fuzz options]\n  \
         bvf corpus import <snap.json>... [--out FILE]\n  \
         bvf corpus info <snap.json>\n  \
         bvf replay <scenario.json> [--bugs SPEC] [--version V] [--no-sanitize] [--diff-oracle]\n             \
         [--san-diff] [--san-defect LIST] [--backend B]\n  \
         bvf minimize <scenario.json> [--bugs SPEC] [--version V] [--no-sanitize]\n             \
         [--diff-oracle] [--san-diff] [--san-defect LIST] [--jobs N] [--out FILE] [--backend B]\n  \
         bvf sancheck [--matrix] [--version V] [--json-out FILE] [--backend B]\n  \
         bvf disasm <scenario.json|program.bin>\n  \
         bvf bugs"
    );
    exit(2)
}

struct Args(Vec<String>);

impl Args {
    fn opt(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    /// Parses `name`'s value, exiting with a usage error if it does
    /// not parse — a mistyped number must not silently fall back to a
    /// default.
    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.opt(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v:?}");
                exit(2);
            })
        })
    }
}

/// Edit distance for the `parse_bugs` "did you mean" suggestions.
fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(row[j] + 1).min(prev + 1);
        }
    }
    row[b.len()]
}

fn parse_bugs(spec: &str) -> BugSet {
    match spec {
        "all" => BugSet::all(),
        "none" => BugSet::none(),
        list => {
            let by_name: BTreeMap<&str, BugId> =
                BugId::ALL.iter().map(|b| (b.name(), *b)).collect();
            let mut set = BugSet::none();
            for part in list.split(',') {
                match by_name.get(part) {
                    Some(bug) => set.enable(*bug),
                    None => {
                        // Exact names only: a substring match here once
                        // silently enabled the wrong defect ("bug1"
                        // matched bug10 and bug11 first). Suggest the
                        // closest names instead.
                        let mut candidates: Vec<&str> = by_name.keys().copied().collect();
                        candidates.sort_by_key(|n| (!n.contains(part), levenshtein(n, part)));
                        eprintln!(
                            "unknown bug {part:?}; closest: {}  (see `bvf bugs`)",
                            candidates
                                .iter()
                                .take(3)
                                .copied()
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        exit(2);
                    }
                }
            }
            set
        }
    }
}

fn parse_version(spec: &str) -> KernelVersion {
    match spec {
        "v5.15" | "5.15" => KernelVersion::V5_15,
        "v6.1" | "6.1" => KernelVersion::V6_1,
        "bpf-next" | "next" => KernelVersion::BpfNext,
        other => {
            eprintln!("unknown kernel version {other:?}");
            exit(2);
        }
    }
}

fn parse_san_defects(spec: &str) -> SanDefectSet {
    let mut set = SanDefectSet::none();
    for part in spec.split(',') {
        match SanDefect::from_name(part) {
            Some(d) => set.enable(d),
            None => {
                eprintln!(
                    "unknown sanitizer defect {part:?}; known: {}",
                    SanDefect::ALL
                        .iter()
                        .map(|d| d.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                exit(2);
            }
        }
    }
    set
}

/// `--backend` for the command at hand; `default` is the command's
/// documented default (compiled for campaigns, interp for one-shot
/// replays — both produce byte-identical results by the equivalence
/// contract, so the default is a performance choice, not a behavioral
/// one).
fn parse_backend(args: &Args, default: Backend) -> Backend {
    match args.opt("--backend") {
        None => default,
        Some(spec) => Backend::from_name(spec).unwrap_or_else(|| {
            eprintln!("unknown backend {spec:?}; known: interp, compiled");
            exit(2);
        }),
    }
}

fn parse_generator(spec: &str) -> GeneratorKind {
    match spec {
        "bvf" => GeneratorKind::Bvf,
        "syzkaller" => GeneratorKind::Syzkaller,
        "buzzer" => GeneratorKind::BuzzerAluJmp,
        "buzzer-random" => GeneratorKind::BuzzerRandom,
        other => {
            eprintln!("unknown generator {other:?}");
            exit(2);
        }
    }
}

fn cmd_bugs() {
    println!("{:34} {:10} injectable defects", "name", "component");
    for bug in BugId::ALL {
        println!(
            "{:34} {:10} {}",
            bug.name(),
            if bug.is_verifier_bug() {
                "verifier"
            } else {
                "kernel"
            },
            if BugId::VERIFIER_CORRECTNESS.contains(&bug) {
                "Table 2 correctness bug"
            } else if bug == BugId::CveAluOnNullablePtr {
                "CVE-2022-23222 (Listing 1)"
            } else {
                "Table 2 component bug"
            }
        );
    }
}

fn load_snapshot(path: &str) -> CorpusSnapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    CorpusSnapshot::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    })
}

/// Builds a [`CampaignConfig`] from the `fuzz`-family flags (shared by
/// `bvf fuzz` and `bvf corpus export`).
fn campaign_config(args: &Args) -> CampaignConfig {
    let iters: usize = args
        .opt("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000);
    let seed: u64 = args.opt("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let mut cfg = CampaignConfig::new(
        args.opt("--generator")
            .map(parse_generator)
            .unwrap_or(GeneratorKind::Bvf),
        iters,
        seed,
    );
    cfg.bugs = args
        .opt("--bugs")
        .map(parse_bugs)
        .unwrap_or_else(BugSet::all);
    cfg.version = args
        .opt("--version")
        .map(parse_version)
        .unwrap_or(KernelVersion::BpfNext);
    cfg.sanitize = !args.flag("--no-sanitize");
    cfg.triage = !args.flag("--no-triage");
    cfg.feedback = !args.flag("--no-feedback");
    cfg.diff_oracle = args.flag("--diff-oracle");
    cfg.steer = args.flag("--steer");
    cfg.san_diff = args.flag("--san-diff");
    cfg.backend = parse_backend(args, Backend::Compiled);
    if let Some(spec) = args.opt("--san-defect") {
        cfg.san_defects = parse_san_defects(spec);
        if !cfg.san_diff {
            eprintln!("--san-defect requires --san-diff (defects only matter to the dual-execution oracle)");
            exit(2);
        }
    }
    if let Some(n) = args.opt("--snapshot-every").and_then(|v| v.parse().ok()) {
        cfg.snapshot_every = std::cmp::max(n, 1);
    }
    if let Some(n) = args.opt("--batch-len").and_then(|v| v.parse().ok()) {
        cfg.batch_len = std::cmp::max(n, 1);
    }
    if let Some(n) = args.opt("--exchange-every").and_then(|v| v.parse().ok()) {
        cfg.exchange_every = n;
    }
    if let Some(n) = args.opt("--exchange-batch").and_then(|v| v.parse().ok()) {
        cfg.exchange_batch = n;
    }
    if let Some(path) = args.opt("--corpus-in") {
        cfg.base = load_snapshot(path).to_base();
    }
    cfg
}

fn parse_workers(args: &Args) -> usize {
    match args.opt("--workers").and_then(|v| v.parse::<usize>().ok()) {
        Some(0) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(n) => n,
        None => 1,
    }
}

fn cmd_fuzz(args: &Args) {
    let cfg = campaign_config(args);
    if let Some(addr) = args.opt("--remote") {
        cmd_fuzz_remote(args, addr, cfg);
        return;
    }
    let (iters, seed) = (cfg.iterations, cfg.seed);
    let workers = parse_workers(args);
    let corpus_out = args.opt("--corpus-out");
    let trace_path = args.opt("--trace-out");
    let stats_every: usize = args
        .opt("--stats-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or((iters / 100).max(1));

    eprintln!(
        "fuzzing: {} iterations, generator {}, {} defects injected, sanitation {}{}",
        cfg.iterations,
        cfg.generator.name(),
        cfg.bugs.iter().count(),
        if cfg.sanitize { "on" } else { "off" },
        if workers > 1 {
            format!(", {workers} workers")
        } else {
            String::new()
        }
    );

    // The serial path cannot export a snapshot (it folds batch outputs
    // as it goes), so `--corpus-out` routes through the scheduler even
    // at one worker — by design that is bit-identical.
    let (r, registry): (CampaignResult, Registry) = if workers > 1 || corpus_out.is_some() {
        let mut pcfg = ParallelConfig::new(workers);
        pcfg.stats_every = stats_every;
        pcfg.trace = trace_path.is_some();
        pcfg.snapshot = corpus_out.is_some();
        if let Some(s) = args.opt("--chaos").and_then(|v| v.parse().ok()) {
            pcfg.chaos = s;
        }
        let outcome = run_sharded(&cfg, &pcfg);
        if let (Some(path), Some(trace)) = (trace_path, &outcome.trace) {
            std::fs::write(path, trace).unwrap_or_else(|e| {
                eprintln!("cannot write trace file {path}: {e}");
                exit(1);
            });
        }
        if let (Some(path), Some(snap)) = (corpus_out, &outcome.snapshot) {
            std::fs::write(path, snap.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write corpus snapshot {path}: {e}");
                exit(1);
            });
            eprintln!(
                "corpus snapshot written to {path} ({} entries, {} coverage points)",
                snap.corpus_len(),
                snap.coverage().len()
            );
        }
        for w in &outcome.workers {
            eprintln!(
                "worker {}: batches {} ({} stolen)  iters {}  accepted {}  findings {}  {:.2}s",
                w.worker,
                w.batches,
                w.stolen,
                w.iterations,
                w.accepted,
                w.findings,
                w.wall_ns as f64 / 1e9
            );
        }
        (outcome.result, outcome.registry)
    } else {
        let sink: Box<dyn TraceSink> = match trace_path {
            Some(path) => {
                let f = std::fs::File::create(path).unwrap_or_else(|e| {
                    eprintln!("cannot create trace file {path}: {e}");
                    exit(1);
                });
                Box::new(JsonlSink::new(std::io::BufWriter::new(f)))
            }
            None => Box::new(NullSink),
        };
        let mut tel = Telemetry::new(sink).with_progress_every(stats_every);
        let r = run_campaign_with_telemetry(&cfg, &mut tel);
        let registry = std::mem::take(&mut tel.registry);
        (r, registry)
    };
    println!(
        "iterations {}  accepted {} ({:.1}%)  coverage {}  corpus {}",
        r.iterations,
        r.accepted,
        100.0 * r.acceptance_rate(),
        r.coverage.len(),
        r.corpus_len
    );
    if cfg.diff_oracle {
        println!(
            "diff oracle: {} steps checked ({} regs), {} skipped (emitted {}, unrecorded {}), {} divergences",
            r.diff.steps_checked,
            r.diff.regs_checked,
            r.diff.steps_skipped_emitted + r.diff.steps_skipped_unrecorded,
            r.diff.steps_skipped_emitted,
            r.diff.steps_skipped_unrecorded,
            r.diff.divergences
        );
    }
    if cfg.san_diff {
        println!(
            "sancheck: {} dual runs, {} divergences (exec {}, step {}, abort {}, masked {}, unchecked {}, fault-meta {})",
            r.san.runs,
            r.san.divergences,
            r.san.exec_mismatch,
            r.san.step_mismatch,
            r.san.san_abort,
            r.san.masked_fault,
            r.san.unchecked_access,
            r.san.fault_meta_mismatch
        );
    }
    for (phase, name) in [
        ("structure", "verify.structure_ns"),
        ("do_check", "verify.do_check_ns"),
        ("prune", "verify.prune_ns"),
        ("fixup", "verify.fixup_ns"),
        ("sanitize", "verify.sanitize_ns"),
    ] {
        if let Some(h) = registry.histogram(name).filter(|h| !h.is_empty()) {
            println!(
                "  {phase:9} mean {:>9.0} ns  p50 {:>9} ns  p99 {:>9} ns",
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
        }
    }
    print_findings(&r.findings);

    if let Some(dir) = args.opt("--save-findings") {
        save_findings(dir, seed, &r.findings);
    }

    if let Some(path) = args.opt("--json-out") {
        let stats = r.to_stats(seed, registry);
        write_stats(path, &stats);
    }
}

fn print_findings(findings: &[FindingRecord]) {
    for rec in findings {
        println!(
            "\nfinding at iteration {} — indicator {:?}, culprits {:?}",
            rec.iteration, rec.finding.indicator, rec.culprits
        );
        for rep in &rec.finding.reports {
            println!("  {}", rep.summary());
        }
    }
    if findings.is_empty() {
        println!("no findings");
    }
}

fn save_findings(dir: &str, seed: u64, findings: &[FindingRecord]) {
    std::fs::create_dir_all(dir).expect("create findings dir");
    // Seed-qualified names let campaigns share a directory; refuse
    // to overwrite before writing anything rather than midway.
    let paths: Vec<_> = (0..findings.len())
        .map(|i| Path::new(dir).join(format!("finding-s{seed}-{i:03}.json")))
        .collect();
    if let Some(existing) = paths.iter().find(|p| p.exists()) {
        eprintln!(
            "refusing to overwrite {} (same seed already saved here; pick another directory or seed)",
            existing.display()
        );
        exit(1);
    }
    for (path, rec) in paths.iter().zip(findings) {
        let json = serde_json::to_string_pretty(&rec.finding.scenario).unwrap();
        std::fs::write(path, json).expect("write finding");
        println!("saved {}", path.display());
    }
}

fn write_stats(path: &str, stats: &bvf_telemetry::CampaignStats) {
    let json = serde_json::to_string_pretty(stats).unwrap();
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("cannot write stats file {path}: {e}");
        exit(1);
    });
    eprintln!("stats written to {path}");
}

/// `bvf fuzz --remote ADDR`: submit the campaign to a fabric
/// coordinator and block until remote workers finish it. The merged
/// stats and findings are bit-identical to a local run of the same
/// config, so `--json-out` / `--save-findings` behave exactly as they
/// do locally; flags that configure *local* execution machinery are
/// rejected rather than silently ignored.
fn cmd_fuzz_remote(args: &Args, addr: &str, cfg: CampaignConfig) {
    for flag in [
        "--workers",
        "--chaos",
        "--trace-out",
        "--corpus-out",
        "--stats-every",
    ] {
        if args.opt(flag).is_some() {
            eprintln!(
                "{flag} is not supported with --remote: the coordinator schedules \
                 its attached workers, and trace/snapshot export and the stats \
                 cadence are local-only"
            );
            exit(2);
        }
    }
    let seed = cfg.seed;
    eprintln!(
        "fuzzing via coordinator {addr}: {} iterations, generator {}, {} defects injected, sanitation {}",
        cfg.iterations,
        cfg.generator.name(),
        cfg.bugs.iter().count(),
        if cfg.sanitize { "on" } else { "off" }
    );
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to coordinator at {addr}: {e}");
        exit(1);
    });
    let mut last_done = usize::MAX;
    let outcome = client
        .run_to_completion(cfg, Duration::from_millis(50), |s| {
            if s.batches_done != last_done {
                last_done = s.batches_done;
                eprintln!(
                    "  remote: {}/{} batches done ({} leased)  iters {}  accepted {}  findings {}",
                    s.batches_done,
                    s.batches_total,
                    s.batches_leased,
                    s.iterations,
                    s.accepted,
                    s.findings
                );
            }
        })
        .unwrap_or_else(|e| {
            eprintln!("remote campaign failed: {e}");
            exit(1);
        });
    let stats = &outcome.stats;
    println!(
        "iterations {}  accepted {} ({:.1}%)  coverage {}  corpus {}",
        stats.iterations,
        stats.accepted,
        100.0 * stats.acceptance_rate,
        stats.coverage_points,
        stats.corpus_len
    );
    print_findings(&outcome.findings);
    if let Some(dir) = args.opt("--save-findings") {
        save_findings(dir, seed, &outcome.findings);
    }
    if let Some(path) = args.opt("--json-out") {
        write_stats(path, stats);
    }
}

fn cmd_serve(args: &Args) {
    let Some(listen) = args.opt("--listen") else {
        eprintln!("serve needs --listen ADDR");
        exit(2);
    };
    let defaults = CoordinatorOptions::default();
    let opts = CoordinatorOptions {
        state_dir: args.opt("--state").map(PathBuf::from),
        lease_timeout: args
            .parsed("--lease-timeout")
            .map_or(defaults.lease_timeout, Duration::from_secs),
    };
    let coordinator = Coordinator::bind(listen, opts).unwrap_or_else(|e| {
        eprintln!("cannot bind coordinator on {listen}: {e}");
        exit(1);
    });
    match coordinator.local_addr() {
        Ok(a) => eprintln!("fabric coordinator listening on {a}"),
        Err(_) => eprintln!("fabric coordinator listening on {listen}"),
    }
    match coordinator.run() {
        Ok(c) => eprintln!(
            "coordinator shut down: {} leases issued ({} re-issued), {} completions \
             ({} duplicate), {} deltas streamed, {} dedup claims ({} first), {} worker sessions",
            c.leases_issued,
            c.leases_reissued,
            c.completions,
            c.duplicate_completions,
            c.deltas_streamed,
            c.claims,
            c.claims_first,
            c.worker_sessions
        ),
        Err(e) => {
            eprintln!("coordinator failed: {e}");
            exit(1);
        }
    }
}

fn cmd_worker(args: &Args) {
    let Some(addr) = args.opt("--connect") else {
        eprintln!("worker needs --connect ADDR");
        exit(2);
    };
    let defaults = WorkerOptions::default();
    let opts = WorkerOptions {
        poll: args
            .parsed("--poll-ms")
            .map_or(defaults.poll, Duration::from_millis),
        max_batches: args.parsed("--max-batches"),
        backend_override: args
            .opt("--backend")
            .map(|_| parse_backend(args, Backend::Compiled)),
        ..defaults
    };
    let stop = AtomicBool::new(false);
    match run_worker(addr, &opts, &stop) {
        Ok(report) => eprintln!(
            "worker done: {} batches across {} campaigns ({} abandoned)",
            report.batches, report.campaigns, report.abandoned
        ),
        // The coordinator closing the connection (shutdown) is the
        // normal way an open-ended worker exits — not a failure.
        Err(FabricError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            ) =>
        {
            eprintln!("worker exiting: coordinator closed the connection");
        }
        Err(e) => {
            eprintln!("worker failed: {e}");
            exit(1);
        }
    }
}

fn load_scenario(path: &str) -> Scenario {
    let data = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    if path.ends_with(".json") {
        serde_json::from_slice(&data).unwrap_or_else(|e| {
            eprintln!("cannot parse scenario: {e}");
            exit(1);
        })
    } else {
        // Raw instruction bytes; run as a socket filter test run.
        let prog = bvf_isa::Program::from_bytes(&data).unwrap_or_else(|| {
            eprintln!("program length must be a multiple of 8 bytes");
            exit(1);
        });
        Scenario::test_run(prog, bvf_kernel_sim::progtype::ProgType::SocketFilter)
    }
}

fn cmd_replay(args: &Args, path: &str) {
    let scenario = load_scenario(path);
    let bugs = args
        .opt("--bugs")
        .map(parse_bugs)
        .unwrap_or_else(BugSet::all);
    let version = args
        .opt("--version")
        .map(parse_version)
        .unwrap_or(KernelVersion::BpfNext);
    let sanitize = !args.flag("--no-sanitize");
    let diff = args.flag("--diff-oracle");
    let san_diff = args.flag("--san-diff");
    let san_defects = args
        .opt("--san-defect")
        .map(parse_san_defects)
        .unwrap_or_else(SanDefectSet::none);
    if !san_defects.is_empty() && !san_diff {
        eprintln!(
            "--san-defect requires --san-diff (defects only matter to the dual-execution oracle)"
        );
        exit(2);
    }

    println!(
        "program ({:?}, trigger {:?}):\n{}",
        scenario.prog_type,
        scenario.trigger,
        scenario.prog.dump()
    );
    let backend = parse_backend(args, Backend::Interp);
    let out = if san_diff {
        run_scenario_san_diff_backend(&scenario, &bugs, version, san_defects, backend)
    } else if diff {
        run_scenario_diff_backend(&scenario, &bugs, version, sanitize, backend)
    } else {
        run_scenario_backend(&scenario, &bugs, version, sanitize, backend)
    };
    match &out.load {
        Ok(_) => println!(
            "verifier: ACCEPTED ({} insns processed)",
            out.verifier_insns
        ),
        Err(e) => println!("verifier: REJECTED — {e}"),
    }
    if out.attach_rejected {
        println!("attach: REFUSED");
    }
    if let Some(h) = out.halt {
        println!("execution halted: {h:?}");
    }
    if diff {
        println!(
            "diff oracle: {} steps checked ({} regs), {} divergences",
            out.diff.steps_checked, out.diff.regs_checked, out.diff.divergences
        );
    }
    if san_diff {
        println!(
            "sancheck: {} dual runs, {} divergences",
            out.san.runs, out.san.divergences
        );
    }
    for r in &out.reports {
        println!("report: {}", r.summary());
    }
    if let Some(f) = judge(&scenario, &out) {
        // The exact string campaign dedup keys on, so a replayed finding
        // can be matched against `fuzz` output byte for byte.
        println!("\noracle: indicator {:?} triggered", f.indicator);
        println!("signature: {}", report_signature(f.indicator, &f.reports));
        println!("running triage...");
        let culprits = triage_with_defects(&f, &bugs, version, sanitize, san_defects);
        println!("culprits: {culprits:?}");
        if san_diff
            && !san_defects.is_empty()
            && f.reports
                .iter()
                .any(|r| matches!(r, KernelReport::SanitizerDivergence { .. }))
        {
            let sd = triage_san_defects(&f, &bugs, version, san_defects);
            println!(
                "sanitizer-defect culprits: {:?}",
                sd.iter().map(|d| d.name()).collect::<Vec<_>>()
            );
        }
    } else {
        println!("\noracle: no finding");
    }
}

fn cmd_minimize(args: &Args, path: &str) {
    let scenario = load_scenario(path);
    let bugs = args
        .opt("--bugs")
        .map(parse_bugs)
        .unwrap_or_else(BugSet::all);
    let version = args
        .opt("--version")
        .map(parse_version)
        .unwrap_or(KernelVersion::BpfNext);
    let sanitize = !args.flag("--no-sanitize");
    let diff = args.flag("--diff-oracle");
    let san_diff = args.flag("--san-diff");
    let san_defects = args
        .opt("--san-defect")
        .map(parse_san_defects)
        .unwrap_or_else(SanDefectSet::none);
    if !san_defects.is_empty() && !san_diff {
        eprintln!(
            "--san-defect requires --san-diff (defects only matter to the dual-execution oracle)"
        );
        exit(2);
    }
    let jobs: usize = args
        .opt("--jobs")
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad --jobs: {s}");
                exit(2);
            })
        })
        .unwrap_or(1)
        .max(1);

    let backend = parse_backend(args, Backend::Interp);
    let minimized = if san_diff {
        minimize_finding_san(&scenario, &bugs, version, san_defects, jobs, backend)
    } else {
        minimize_finding_jobs(&scenario, &bugs, version, sanitize, diff, jobs, backend)
    };
    let out = match minimized {
        Ok(out) => out,
        Err(e) => {
            eprintln!("cannot minimize: {e}");
            exit(1);
        }
    };
    println!(
        "minimized: {} of {} instruction units kept ({} replays)",
        out.units_kept, out.units_total, out.replays
    );
    println!(
        "cache: {} hits, {} misses ({} candidate evaluations answered without a replay)",
        out.cache_hits, out.cache_misses, out.cache_hits
    );
    println!("signature: {}", out.signature);
    println!("{}", out.scenario.prog.dump());

    let out_path = args
        .opt("--out")
        .map(String::from)
        .unwrap_or_else(|| format!("{}.min.json", path.trim_end_matches(".json")));
    let json = serde_json::to_string_pretty(&out.scenario).unwrap();
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        exit(1);
    });
    println!("saved {out_path}");
}

fn cmd_sancheck(args: &Args) {
    let version = args
        .opt("--version")
        .map(parse_version)
        .unwrap_or(KernelVersion::BpfNext);
    // `--matrix` is the documented spelling; a bare `bvf sancheck` runs
    // the same defect matrix.
    let _ = args.flag("--matrix");
    let backend = parse_backend(args, Backend::Interp);

    let out = run_matrix(version, backend);
    println!(
        "sanitizer-defect matrix ({version:?}, {} backend):",
        backend.name()
    );
    let mut divergences = 0u64;
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    for r in &out.results {
        if r.diverged_armed {
            divergences += 1;
        }
        if r.diverged_healed {
            divergences += 1;
        }
        if let Some(k) = r.kind {
            *kinds.entry(k.name().to_string()).or_insert(0) += 1;
        }
        let verdict = if r.caught() { "CAUGHT" } else { "ESCAPED" };
        println!(
            "  {:20} armed={:5} healed={:5} kind={:18} {}",
            r.defect.name(),
            r.diverged_armed,
            r.diverged_healed,
            r.kind.map(|k| k.name()).unwrap_or("-"),
            verdict
        );
    }
    let escaped = out.escaped();
    println!(
        "matrix: {}/{} defect classes caught",
        out.results.len() - escaped.len(),
        out.results.len()
    );

    if let Some(path) = args.opt("--json-out") {
        let stats = bvf_telemetry::SancheckStats {
            runs: 2 * out.results.len() as u64,
            divergences,
            kinds,
            matrix_hits: out.hits(),
        };
        let json = serde_json::to_string_pretty(&stats).unwrap();
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("saved {path}");
    }

    if !escaped.is_empty() {
        eprintln!(
            "ESCAPED: {:?}",
            escaped.iter().map(|d| d.name()).collect::<Vec<_>>()
        );
        exit(1);
    }
}

fn cmd_disasm(path: &str) {
    let scenario = load_scenario(path);
    println!("{}", scenario.prog.dump());
}

fn print_snapshot_summary(snap: &CorpusSnapshot) {
    println!(
        "{} v{}  generator {}  seed {}  iterations {}  batch-len {}  exchange-every {}",
        snap.format,
        snap.version,
        snap.generator,
        snap.seed,
        snap.iterations,
        snap.batch_len,
        snap.exchange_every
    );
    println!(
        "{} batches  {} corpus entries  {} coverage points  {} findings",
        snap.batches.len(),
        snap.corpus_len(),
        snap.coverage().len(),
        snap.finding_signatures().len()
    );
}

fn cmd_corpus(args: &Args, argv: &[String]) {
    match argv.get(1).map(|s| s.as_str()) {
        Some("export") => {
            let Some(out) = args.opt("--out") else {
                eprintln!("corpus export needs --out FILE");
                exit(2);
            };
            let cfg = campaign_config(args);
            let mut pcfg = ParallelConfig::new(parse_workers(args));
            pcfg.snapshot = true;
            let outcome = run_sharded(&cfg, &pcfg);
            let snap = outcome.snapshot.expect("snapshot requested");
            std::fs::write(out, snap.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1);
            });
            print_snapshot_summary(&snap);
            println!("saved {out}");
        }
        Some("import") => {
            let inputs: Vec<&String> = argv[2..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            if inputs.is_empty() {
                eprintln!("corpus import needs at least one snapshot file");
                exit(2);
            }
            let snaps: Vec<CorpusSnapshot> = inputs.iter().map(|p| load_snapshot(p)).collect();
            let merged = CorpusSnapshot::merge(snaps).unwrap_or_else(|e| {
                eprintln!("corpus import: {e}");
                exit(1);
            });
            print_snapshot_summary(&merged);
            if let Some(out) = args.opt("--out") {
                std::fs::write(out, merged.to_json()).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1);
                });
                println!("saved {out}");
            }
        }
        Some("info") => match argv.get(2) {
            Some(path) => print_snapshot_summary(&load_snapshot(path)),
            None => usage(),
        },
        _ => usage(),
    }
}

/// `bvf report <trace.jsonl>`: fold a `--trace-out` file back into the
/// rejection-taxonomy breakdown and per-shape acceptance rates.
///
/// Worker-tagged parallel traces are supported: `Gen` and `Verify`
/// events are joined on `(worker, iter)`, so each verdict is attributed
/// to the shape of the program it ruled on. Any malformed line aborts
/// with a nonzero exit, pointing at the offending line.
fn cmd_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });

    let mut verified = 0usize;
    let mut accepted = 0usize;
    let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
    // Shape of the program generated at (worker, iter), awaiting its
    // Verify event. Mutations and unsteered generations have no shape
    // tag and fall into the "unsteered" bucket.
    let mut pending_shape: BTreeMap<(u64, usize), String> = BTreeMap::new();
    // shape -> (verdicts, accepted)
    let mut by_shape: BTreeMap<String, (usize, usize)> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let value: serde_json::Value = serde_json::from_str(line).unwrap_or_else(|e| {
            eprintln!("{path}:{lineno}: malformed trace line: {e}");
            exit(2);
        });
        let worker = value.get("worker").and_then(|w| w.as_u64()).unwrap_or(0);
        let event: TraceEvent = serde_json::from_value(value).unwrap_or_else(|e| {
            eprintln!("{path}:{lineno}: not a trace event: {e}");
            exit(2);
        });
        match event {
            TraceEvent::Gen { iter, shape, .. } => {
                let label = shape.unwrap_or_else(|| "unsteered".to_string());
                pending_shape.insert((worker, iter), label);
            }
            TraceEvent::Verify {
                iter,
                accepted: ok,
                reason,
                ..
            } => {
                verified += 1;
                let label = pending_shape
                    .remove(&(worker, iter))
                    .unwrap_or_else(|| "unsteered".to_string());
                let slot = by_shape.entry(label).or_insert((0, 0));
                slot.0 += 1;
                if ok {
                    accepted += 1;
                    slot.1 += 1;
                } else {
                    let key = reason.unwrap_or_else(|| "unknown".to_string());
                    *reasons.entry(key).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }

    let rejected = verified - accepted;
    let pct = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    println!(
        "{verified} programs verified: {accepted} accepted ({:.1}%), {rejected} rejected",
        pct(accepted, verified)
    );

    println!("\nrejection reasons ({} distinct):", reasons.len());
    if rejected == 0 {
        println!("  (none)");
    } else {
        let mut rows: Vec<(&String, &usize)> = reasons.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (reason, count) in rows {
            println!("  {reason:<28} {count:>8}  {:>5.1}%", pct(*count, rejected));
        }
    }

    println!("\nacceptance by generation shape:");
    if by_shape.is_empty() {
        println!("  (no verdicts)");
    } else {
        for (shape, (verdicts, acc)) in &by_shape {
            println!(
                "  {shape:<28} {acc:>8} / {verdicts:<8} {:>5.1}%",
                pct(*acc, *verdicts)
            );
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().map(|s| s.as_str()) else {
        usage()
    };
    let args = Args(argv.clone());
    match cmd {
        "fuzz" => cmd_fuzz(&args),
        "serve" => cmd_serve(&args),
        "worker" => cmd_worker(&args),
        "replay" => match argv.get(1) {
            Some(p) if !p.starts_with("--") => cmd_replay(&args, p),
            _ => usage(),
        },
        "minimize" => match argv.get(1) {
            Some(p) if !p.starts_with("--") => cmd_minimize(&args, p),
            _ => usage(),
        },
        "disasm" => match argv.get(1) {
            Some(p) => cmd_disasm(p),
            None => usage(),
        },
        "report" => match argv.get(1) {
            Some(p) if !p.starts_with("--") => cmd_report(p),
            _ => usage(),
        },
        "corpus" => cmd_corpus(&args, &argv),
        "sancheck" => cmd_sancheck(&args),
        "bugs" => cmd_bugs(),
        _ => usage(),
    }
}
