//! Property tests: the explored-state fingerprint is a *pure filter*.
//!
//! The fast path skips a `states_equal(old, cur)` comparison whenever
//! `StateShape::of(old).may_subsume(&StateShape::of(cur))` is `false`
//! (or the bucket keys differ). That is only sound if the implication
//!
//! ```text
//! states_equal(old, cur)  ⇒  bucket(old) == bucket(cur)
//!                            && shape(old).may_subsume(shape(cur))
//! ```
//!
//! holds for *every* pair of states — a single counterexample would mean
//! the index can suppress a legitimate prune and change exploration.
//! The first property fuzzes exactly that implication over arbitrary
//! state pairs.
//!
//! The second property checks the same fact end to end: verifying a
//! random program with the index on and off must produce the identical
//! verdict, instruction count, and coverage — the index may only change
//! how many comparisons run, never their outcome.

use std::rc::Rc;

use bvf_isa::{asm, AluOp, JmpOp, Program, Reg, Size};
use bvf_kernel_sim::progtype::ProgType;
use bvf_kernel_sim::{BugSet, Kernel};
use bvf_verifier::prune::states_equal;
use bvf_verifier::state::{FuncState, StackByte, StackSlot, VerifierState};
use bvf_verifier::types::{RegState, RegType};
use bvf_verifier::{verify, StateShape, VerifierOpts};
use proptest::prelude::*;

/// An arbitrary register state covering every [`RegType`] discriminant
/// the generator can reach, with scalar bounds that are sometimes wide
/// and sometimes tight (so subsumption holds often enough for the
/// implication to be exercised in the non-vacuous direction).
fn arb_reg() -> impl Strategy<Value = RegState> {
    prop_oneof![
        Just(RegState::not_init()),
        Just(RegState::unknown_scalar()),
        (0u64..1 << 48).prop_map(RegState::known_scalar),
        (0u64..1 << 48).prop_map(|max| {
            let mut r = RegState::unknown_scalar();
            r.umax = max;
            r.smax = max as i64;
            r.var_off = bvf_verifier::Tnum::range(0, max);
            r.update_reg_bounds();
            r
        }),
        Just(RegState::pointer(RegType::PtrToCtx)),
        Just(RegState::pointer(RegType::PtrToStack)),
        (0u32..3, any::<bool>()).prop_map(|(map_id, maybe_null)| {
            let mut r = RegState::pointer(RegType::PtrToMapValue { map_id });
            r.maybe_null = maybe_null;
            r
        }),
        (0u32..3).prop_map(|map_id| RegState::pointer(RegType::ConstPtrToMap { map_id })),
    ]
}

/// An arbitrary stack slot: untouched, misc-initialized, zeroed, a full
/// spill, or a mixed partial write.
fn arb_slot() -> impl Strategy<Value = StackSlot> {
    prop_oneof![
        Just(StackSlot {
            bytes: [StackByte::Invalid; 8],
            spilled: RegState::not_init(),
        }),
        Just(StackSlot {
            bytes: [StackByte::Misc; 8],
            spilled: RegState::not_init(),
        }),
        Just(StackSlot {
            bytes: [StackByte::Zero; 8],
            spilled: RegState::not_init(),
        }),
        arb_reg().prop_map(|spilled| StackSlot {
            bytes: [StackByte::Spill; 8],
            spilled,
        }),
        Just(StackSlot {
            bytes: [
                StackByte::Misc,
                StackByte::Misc,
                StackByte::Invalid,
                StackByte::Invalid,
                StackByte::Zero,
                StackByte::Zero,
                StackByte::Misc,
                StackByte::Invalid,
            ],
            spilled: RegState::not_init(),
        }),
    ]
}

/// An arbitrary verifier state: 1–2 call frames, randomized registers,
/// a few randomized stack slots, and 0–1 acquired references.
fn arb_state() -> impl Strategy<Value = VerifierState> {
    (
        proptest::collection::vec(arb_reg(), 10),
        proptest::collection::vec(arb_slot(), 4),
        0usize..2,
        0usize..2,
    )
        .prop_map(|(regs, slots, extra_frames, refs)| {
            let mut state = VerifierState::entry();
            {
                let frame = state.cur_mut();
                for (i, r) in regs.into_iter().enumerate() {
                    frame.regs[i] = r;
                }
                let stack = frame.stack_mut();
                for (i, s) in slots.into_iter().enumerate() {
                    stack[i] = s;
                }
            }
            for i in 0..extra_frames {
                state.frames.push(Rc::new(FuncState::new(3 + i, 7)));
            }
            let mut next_id = 1;
            for _ in 0..refs {
                state.acquire_ref(&mut next_id, 5);
            }
            state
        })
}

proptest! {

    /// The load-bearing implication: whenever the full comparison says
    /// `old` subsumes `cur`, the fingerprint must have admitted the
    /// pair. (Contrapositive: a fingerprint mismatch proves
    /// `states_equal` false, so skipping it is sound.)
    #[test]
    fn fingerprint_mismatch_implies_states_not_equal(
        old in arb_state(),
        cur in arb_state(),
    ) {
        let so = StateShape::of(&old);
        let sc = StateShape::of(&cur);
        if states_equal(&old, &cur) {
            prop_assert_eq!(so.bucket(), sc.bucket(),
                "equal states landed in different buckets");
            prop_assert!(so.may_subsume(&sc),
                "fingerprint rejected a subsuming pair");
        }
    }

    /// A state always subsumes itself, and its fingerprint must agree.
    #[test]
    fn reflexivity_survives_the_filter(state in arb_state()) {
        prop_assert!(states_equal(&state, &state));
        let s = StateShape::of(&state);
        prop_assert!(s.may_subsume(&s));
    }
}

/// Instruction soup for the end-to-end property: ALU ops, bounded
/// conditional jumps (forward and backward), and stack accesses — enough
/// to create join points, loops, and prune-point traffic. Many programs
/// are invalid; rejection must then be identical with the index on and
/// off.
fn arb_program() -> impl Strategy<Value = Program> {
    const REGS: [Reg; 5] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4];
    const ALU: [AluOp; 6] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Rsh,
    ];
    const JMP: [JmpOp; 4] = [JmpOp::Jeq, JmpOp::Jne, JmpOp::Jgt, JmpOp::Jsgt];
    let insn =
        (0u8..7, 0usize..5, 0usize..5, -64i32..64, -4i16..6).prop_map(|(kind, a, b, imm, off)| {
            match kind {
                0 => asm::mov64_imm(REGS[a], imm),
                1 => asm::mov64_reg(REGS[a], REGS[b]),
                2 => asm::alu64_imm(ALU[a % ALU.len()], REGS[b], imm & 31),
                3 => asm::alu64_reg(ALU[a % ALU.len()], REGS[b], REGS[a]),
                4 => asm::jmp_imm(JMP[a % JMP.len()], REGS[b], imm, off),
                5 => asm::st_mem(Size::Dw, Reg::R10, -8, imm),
                _ => asm::ldx_mem(Size::Dw, REGS[a], Reg::R10, -8),
            }
        });
    proptest::collection::vec(insn, 1..24).prop_map(|mut insns| {
        insns.push(asm::mov64_imm(Reg::R0, 0));
        insns.push(asm::exit());
        Program::from_insns(insns)
    })
}

/// The projection of a verification outcome that must be identical with
/// the fingerprint index on and off.
fn verdict(prog: &Program, prune_index: bool) -> (Result<usize, String>, bvf_verifier::Coverage) {
    let kernel = Kernel::new(BugSet::none());
    let opts = VerifierOpts {
        insn_limit: 20_000,
        prune_index,
        ..Default::default()
    };
    let out = verify(&kernel, prog, ProgType::SocketFilter, &opts);
    let result = out
        .result
        .map(|p| p.insns_processed)
        .map_err(|e| e.to_string());
    (result, out.cov)
}

proptest! {

    /// End to end: the index changes how many `states_equal` calls run,
    /// never the exploration itself. Verdict, instruction count, and
    /// branch coverage must be bit-identical with the index on and off.
    #[test]
    fn index_on_and_off_verify_identically(prog in arb_program()) {
        prop_assert_eq!(verdict(&prog, true), verdict(&prog, false));
    }
}
