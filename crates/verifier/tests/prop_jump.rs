//! Property tests: conditional-jump refinement soundness.
//!
//! [`prop_alu`](./prop_alu.rs) checks the scalar ALU transfer; this
//! suite checks the two jump-side state transformers:
//!
//! - `reg_set_min_max` — branch refinement. For concrete members
//!   `x ∈ γ(dst)`, `y ∈ γ(src)`, refining both registers for the branch
//!   that `x op y` actually takes must keep admitting `x` and `y`.
//!   A violation means the verifier believes a value impossible on a
//!   path where it occurs — exactly the class of range-analysis bug the
//!   sanitized `alu_limit` assertions catch at runtime.
//! - `sync_linked_regs` (the kernel's `find_equal_scalars`) — linked
//!   registers hold the same runtime value by construction, so copying
//!   a refined state across the link group must keep admitting that
//!   shared value, and must never touch unlinked or non-scalar
//!   registers.

use bvf_isa::{JmpOp, Reg};
use bvf_verifier::check::jump::{reg_set_min_max, sync_linked_regs};
use bvf_verifier::state::VerifierState;
use bvf_verifier::types::RegState;
use bvf_verifier::Tnum;
use proptest::prelude::*;

/// The conditional ops `reg_set_min_max` refines (Ja/Call/Exit are not
/// conditional).
const OPS: [JmpOp; 11] = [
    JmpOp::Jeq,
    JmpOp::Jne,
    JmpOp::Jgt,
    JmpOp::Jge,
    JmpOp::Jlt,
    JmpOp::Jle,
    JmpOp::Jsgt,
    JmpOp::Jsge,
    JmpOp::Jslt,
    JmpOp::Jsle,
    JmpOp::Jset,
];

/// Does the abstract scalar admit the concrete value? Mirrors the
/// membership check the differential oracle applies per register.
fn admits(r: &RegState, v: u64) -> bool {
    r.var_off.contains(v)
        && r.umin <= v
        && v <= r.umax
        && r.smin <= (v as i64)
        && (v as i64) <= r.smax
        && r.var_off.subreg().contains(v as u32 as u64)
        && r.u32_min <= (v as u32)
        && (v as u32) <= r.u32_max
        && r.s32_min <= (v as u32 as i32)
        && (v as u32 as i32) <= r.s32_max
}

/// An arbitrary consistent abstract scalar plus one concrete member
/// (same construction as `prop_alu`).
fn reg_with_member() -> impl Strategy<Value = (RegState, u64)> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(value, mask, pick_a, pick_b, tighten)| {
            let value = value & !mask;
            let a = value | (pick_a & mask);
            let b = value | (pick_b & mask);
            let mut r = RegState::unknown_scalar();
            r.var_off = Tnum::new(value, mask);
            if tighten {
                r.umin = a.min(b);
                r.umax = a.max(b);
            }
            r.normalize();
            (r, a)
        })
}

/// The interpreter's concrete comparison semantics: unsigned/signed at
/// the instruction's bitness, `Jset` as a bitwise test.
fn concrete_jmp(op: JmpOp, is32: bool, x: u64, y: u64) -> bool {
    let (xu, yu) = if is32 {
        (x as u32 as u64, y as u32 as u64)
    } else {
        (x, y)
    };
    let (xs, ys) = if is32 {
        (x as u32 as i32 as i64, y as u32 as i32 as i64)
    } else {
        (x as i64, y as i64)
    };
    match op {
        JmpOp::Jeq => xu == yu,
        JmpOp::Jne => xu != yu,
        JmpOp::Jgt => xu > yu,
        JmpOp::Jge => xu >= yu,
        JmpOp::Jlt => xu < yu,
        JmpOp::Jle => xu <= yu,
        JmpOp::Jsgt => xs > ys,
        JmpOp::Jsge => xs >= ys,
        JmpOp::Jslt => xs < ys,
        JmpOp::Jsle => xs <= ys,
        JmpOp::Jset => xu & yu != 0,
        JmpOp::Ja | JmpOp::Call | JmpOp::Exit => unreachable!("not a conditional"),
    }
}

proptest! {
    /// Refining for the branch the concrete values actually take keeps
    /// both members admitted, 64-bit.
    #[test]
    fn refine64_sound((d, x) in reg_with_member(), (s, y) in reg_with_member(), opi in 0usize..OPS.len()) {
        let op = OPS[opi];
        let taken = concrete_jmp(op, false, x, y);
        let (mut dr, mut sr) = (d, s);
        reg_set_min_max(op, false, taken, &mut dr, &mut sr);
        prop_assert!(
            admits(&dr, x),
            "{:?}64 taken={}: dst member {:#x} escapes {} (was {})",
            op, taken, x, dr.describe(), d.describe()
        );
        prop_assert!(
            admits(&sr, y),
            "{:?}64 taken={}: src member {:#x} escapes {} (was {})",
            op, taken, y, sr.describe(), s.describe()
        );
    }

    /// Refining for the actually-taken branch keeps both members
    /// admitted, 32-bit (only the subregister relation is decided).
    #[test]
    fn refine32_sound((d, x) in reg_with_member(), (s, y) in reg_with_member(), opi in 0usize..OPS.len()) {
        let op = OPS[opi];
        let taken = concrete_jmp(op, true, x, y);
        let (mut dr, mut sr) = (d, s);
        reg_set_min_max(op, true, taken, &mut dr, &mut sr);
        prop_assert!(
            admits(&dr, x),
            "{:?}32 taken={}: dst member {:#x} escapes {} (was {})",
            op, taken, x, dr.describe(), d.describe()
        );
        prop_assert!(
            admits(&sr, y),
            "{:?}32 taken={}: src member {:#x} escapes {} (was {})",
            op, taken, y, sr.describe(), s.describe()
        );
    }

    /// Refining against a constant (the `K` operand form) keeps the
    /// member admitted on the actually-taken branch.
    #[test]
    fn refine_const_sound((d, x) in reg_with_member(), y in any::<u64>(), opi in 0usize..OPS.len()) {
        let op = OPS[opi];
        let taken = concrete_jmp(op, false, x, y);
        let (mut dr, mut sr) = (d, RegState::known_scalar(y));
        reg_set_min_max(op, false, taken, &mut dr, &mut sr);
        prop_assert!(
            admits(&dr, x),
            "{:?} vs const {:#x} taken={}: member {:#x} escapes {}",
            op, y, taken, x, dr.describe()
        );
    }

    /// Linked registers hold the same runtime value; syncing a refined
    /// state across the link group keeps admitting it everywhere, and
    /// leaves unlinked registers untouched.
    #[test]
    fn sync_linked_regs_sound((d, x) in reg_with_member(), (u, _) in reg_with_member(), y in any::<u64>(), opi in 0usize..OPS.len()) {
        let op = OPS[opi];
        let mut state = VerifierState::entry();
        let mut linked = d;
        linked.id = 7;
        *state.cur_mut().reg_mut(Reg::R1) = linked;
        *state.cur_mut().reg_mut(Reg::R2) = linked;
        let mut unlinked = u;
        unlinked.id = 0;
        *state.cur_mut().reg_mut(Reg::R3) = unlinked;

        // Refine one copy of the linked state as a real branch would.
        let taken = concrete_jmp(op, false, x, y);
        let mut refined = linked;
        let mut src = RegState::known_scalar(y);
        reg_set_min_max(op, false, taken, &mut refined, &mut src);
        sync_linked_regs(&mut state, &refined);

        for r in [Reg::R1, Reg::R2] {
            let got = state.cur().reg(r);
            prop_assert_eq!(
                got, &refined,
                "linked {:?} did not receive the refined state", r
            );
            prop_assert!(
                admits(got, x),
                "linked {:?} no longer admits {:#x}: {}", r, x, got.describe()
            );
        }
        prop_assert_eq!(
            state.cur().reg(Reg::R3), &unlinked,
            "unlinked R3 must be untouched"
        );
    }

    /// An unlinked refinement (`id == 0`) is a no-op even on registers
    /// with matching abstract state.
    #[test]
    fn sync_unlinked_is_noop((d, _) in reg_with_member()) {
        let mut state = VerifierState::entry();
        let mut reg = d;
        reg.id = 7;
        *state.cur_mut().reg_mut(Reg::R1) = reg;
        let mut refined = RegState::known_scalar(1);
        refined.id = 0;
        sync_linked_regs(&mut state, &refined);
        prop_assert_eq!(state.cur().reg(Reg::R1), &reg);
    }
}
