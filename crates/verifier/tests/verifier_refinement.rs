//! Verifier range-refinement tests: conditional-jump bounds, 32-bit
//! refinements, equal-scalar propagation, and spill precision.

use bvf_isa::{asm, AluOp, JmpOp, Program, Reg, Size};
use bvf_kernel_sim::helpers::proto::ids as helper;
use bvf_kernel_sim::map::{MapDef, MapType};
use bvf_kernel_sim::progtype::ProgType;
use bvf_kernel_sim::{BugSet, Kernel};
use bvf_verifier::{verify, VerifierOpts};

fn kernel() -> Kernel {
    let mut k = Kernel::new(BugSet::none());
    let mut maps = std::mem::take(&mut k.maps);
    maps.create(
        &mut k.mm,
        MapDef {
            map_type: MapType::Array,
            key_size: 4,
            value_size: 16,
            max_entries: 4,
        },
    )
    .unwrap();
    k.maps = maps;
    k
}

fn accepts(k: &Kernel, prog: &Program) {
    let out = verify(k, prog, ProgType::SocketFilter, &VerifierOpts::default());
    if let Err(e) = &out.result {
        panic!("expected accept, got: {e}\n{}", prog.dump());
    }
}

fn rejects(k: &Kernel, prog: &Program) {
    let out = verify(k, prog, ProgType::SocketFilter, &VerifierOpts::default());
    assert!(out.result.is_err(), "expected reject\n{}", prog.dump());
}

/// Builds: lookup (always guarded), then `body` operating on R0 as a
/// non-null map-value pointer with an unknown scalar in R4 (loaded from
/// the value), ending with exit.
fn with_lookup_and_unknown(body: Vec<bvf_isa::Insn>) -> Program {
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, body.len() as i16 + 1));
    insns.push(asm::ldx_mem(Size::W, Reg::R4, Reg::R0, 0));
    insns.extend(body);
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    // Fix the guard offset: it must skip the r4 load plus the body.
    let guard = insns
        .iter()
        .position(|i| bvf_isa::Class::of(i.code).is_jmp() && i.off != 0)
        .unwrap();
    let exit_target = insns.len() - 2; // the mov r0,0 before exit
    insns[guard].off = (exit_target - guard - 1) as i16;
    Program::from_insns(insns)
}

#[test]
fn unsigned_upper_bound_refinement() {
    // if r4 > 8: skip; else r0[r4] is within a 16-byte value for 1 byte.
    let p = with_lookup_and_unknown(vec![
        asm::jmp_imm(JmpOp::Jgt, Reg::R4, 8, 2),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    accepts(&kernel(), &p);
}

#[test]
fn refinement_too_loose_rejected() {
    // Bound 16 still allows off 16 + 1 byte = 17 > 16.
    let p = with_lookup_and_unknown(vec![
        asm::jmp_imm(JmpOp::Jgt, Reg::R4, 16, 2),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    rejects(&kernel(), &p);
}

#[test]
fn signed_refinement_requires_lower_bound_too() {
    // `if r4 s> 8 skip` leaves smin unbounded (negative) — reject.
    let p = with_lookup_and_unknown(vec![
        asm::jmp_imm(JmpOp::Jsgt, Reg::R4, 8, 2),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    // R4 was loaded as u32 so it is actually non-negative; the verifier
    // knows u32 loads are within [0, u32::MAX] and smin >= 0 after the
    // 64-bit deduction — combined with s> 8 skip it gets [0, 8]: accept.
    accepts(&kernel(), &p);
}

#[test]
fn jmp32_refinement_bounds_64bit_access() {
    let p = with_lookup_and_unknown(vec![
        asm::jmp32_imm(JmpOp::Jgt, Reg::R4, 8, 2),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    // A 32-bit bound on a zero-extended 32-bit load bounds the 64-bit
    // value as well.
    accepts(&kernel(), &p);
}

#[test]
fn jset_learns_nothing_but_is_legal() {
    let p = with_lookup_and_unknown(vec![asm::jmp_imm(JmpOp::Jset, Reg::R4, 8, 0)]);
    accepts(&kernel(), &p);
}

#[test]
fn equal_scalar_refinement_propagates_through_mov() {
    // r5 = r4 (link); bound r5; use r4 — sync_linked_regs must carry
    // the refinement over.
    let p = with_lookup_and_unknown(vec![
        asm::mov64_reg(Reg::R5, Reg::R4),
        asm::jmp_imm(JmpOp::Jgt, Reg::R5, 8, 2),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R6, Reg::R0, 0),
    ]);
    accepts(&kernel(), &p);
}

#[test]
fn equal_scalar_link_severed_by_alu() {
    // After r5 += 1 the registers no longer hold the same value; bounding
    // r5 must NOT bound r4.
    let p = with_lookup_and_unknown(vec![
        asm::mov64_reg(Reg::R5, Reg::R4),
        asm::alu64_imm(AluOp::Add, Reg::R5, 1),
        asm::jmp_imm(JmpOp::Jgt, Reg::R5, 8, 2),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R6, Reg::R0, 0),
    ]);
    rejects(&kernel(), &p);
}

#[test]
fn spilled_scalar_bounds_survive_fill() {
    // Bound r4, spill it, fill into r5, use r5 as an offset.
    let p = with_lookup_and_unknown(vec![
        asm::jmp_imm(JmpOp::Jgt, Reg::R4, 8, 4),
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R4, -16),
        asm::ldx_mem(Size::Dw, Reg::R5, Reg::R10, -16),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R5),
        asm::ldx_mem(Size::B, Reg::R6, Reg::R0, 0),
    ]);
    accepts(&kernel(), &p);
}

#[test]
fn and_mask_bounds_offset() {
    let p = with_lookup_and_unknown(vec![
        asm::alu64_imm(AluOp::And, Reg::R4, 15),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    accepts(&kernel(), &p);
}

#[test]
fn modulo_bounds_offset() {
    let p = with_lookup_and_unknown(vec![
        asm::alu64_imm(AluOp::Mod, Reg::R4, 8),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::Dw, Reg::R5, Reg::R0, 0),
    ]);
    accepts(&kernel(), &p);
}

#[test]
fn rsh_bounds_offset() {
    let p = with_lookup_and_unknown(vec![
        asm::alu64_imm(AluOp::Rsh, Reg::R4, 29),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::Dw, Reg::R5, Reg::R0, 0),
    ]);
    // u32 >> 29 gives [0, 7]; +8 bytes fits in 16.
    accepts(&kernel(), &p);
}

#[test]
fn multiplication_overflow_unbounded() {
    let p = with_lookup_and_unknown(vec![
        asm::alu64_imm(AluOp::And, Reg::R4, 7),
        asm::alu64_imm(AluOp::Mul, Reg::R4, 4),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    // [0,7] * 4 = [0,28]: exceeds the 16-byte value — must reject.
    rejects(&kernel(), &p);
    let ok = with_lookup_and_unknown(vec![
        asm::alu64_imm(AluOp::And, Reg::R4, 3),
        asm::alu64_imm(AluOp::Mul, Reg::R4, 4),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::W, Reg::R5, Reg::R0, 0),
    ]);
    // [0,3] * 4 = [0,12]; +4 = 16: fits exactly.
    accepts(&kernel(), &ok);
}
