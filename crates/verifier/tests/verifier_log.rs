//! Verification-log tests: with logging enabled the verifier narrates the
//! instructions it walks, kernel-log style.

use bvf_isa::{asm, Program, Reg, Size};
use bvf_kernel_sim::progtype::ProgType;
use bvf_kernel_sim::{BugSet, Kernel};
use bvf_verifier::{verify, VerifierOpts};

#[test]
fn log_records_walked_instructions() {
    let k = Kernel::new(BugSet::none());
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R1, 7),
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R1, -8),
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R10, -8),
        asm::exit(),
    ]);
    let opts = VerifierOpts {
        log: true,
        ..Default::default()
    };
    let out = verify(&k, &p, ProgType::SocketFilter, &opts);
    let vprog = out.result.expect("accepts");
    assert!(!vprog.log.is_empty());
    let text = vprog.log.join("\n");
    assert!(text.contains("r1 = 7"), "{text}");
    assert!(text.contains("*(u64 *)(r10 -8) = r1"), "{text}");
    assert!(text.contains("exit"), "{text}");
}

#[test]
fn log_disabled_by_default() {
    let k = Kernel::new(BugSet::none());
    let p = Program::from_insns(vec![asm::mov64_imm(Reg::R0, 0), asm::exit()]);
    let out = verify(&k, &p, ProgType::SocketFilter, &VerifierOpts::default());
    assert!(out.result.unwrap().log.is_empty());
}

#[test]
fn log_covers_both_branches() {
    let k = Kernel::new(BugSet::none());
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R0, 0),
        asm::ldx_mem(Size::W, Reg::R2, Reg::R1, 0),
        asm::jmp_imm(bvf_isa::JmpOp::Jeq, Reg::R2, 0, 1),
        asm::mov64_imm(Reg::R0, 1),
        asm::exit(),
    ]);
    let opts = VerifierOpts {
        log: true,
        ..Default::default()
    };
    let out = verify(&k, &p, ProgType::SocketFilter, &opts);
    let text = out.result.unwrap().log.join("\n");
    // Both the fall-through (r0 = 1) and the jump path appear.
    assert!(text.contains("r0 = 1"), "{text}");
    assert!(
        text.matches("exit").count() >= 2,
        "both paths reach exit:\n{text}"
    );
}
