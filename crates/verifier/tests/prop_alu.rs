//! Property tests: RegState-level scalar ALU transfer soundness.
//!
//! [`prop_tnum`](./prop_tnum.rs) checks the tnum algebra in isolation;
//! this suite checks the *full* transfer the verifier applies to a
//! register — bounds algebra, 32-bit subregister projection, bound
//! recombination, and normalization — against the interpreter's
//! concrete semantics (wrapping arithmetic, masked shift counts,
//! division-by-zero yielding zero, modulo-zero leaving dst unchanged).
//!
//! The property is concretization membership: for abstract scalars
//! `D`, `S` and concrete members `x ∈ γ(D)`, `y ∈ γ(S)`, the concrete
//! result of `x op y` must be a member of the transferred abstract
//! result. This is exactly the invariant the differential oracle
//! (Indicator #3) enforces end to end on whole programs.

use bvf_verifier::check::alu::scalar_transfer;
use bvf_verifier::types::RegState;
use bvf_verifier::Tnum;
use proptest::prelude::*;

use bvf_isa::AluOp;

/// The binary scalar ops `scalar_transfer` accepts (Mov/Neg/End take
/// dedicated paths in the verifier).
const OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Or,
    AluOp::And,
    AluOp::Lsh,
    AluOp::Rsh,
    AluOp::Mod,
    AluOp::Xor,
    AluOp::Arsh,
];

/// Does the abstract scalar admit the concrete value? Mirrors the
/// membership check the differential oracle applies per register.
fn admits(r: &RegState, v: u64) -> bool {
    r.var_off.contains(v)
        && r.umin <= v
        && v <= r.umax
        && r.smin <= (v as i64)
        && (v as i64) <= r.smax
        && r.var_off.subreg().contains(v as u32 as u64)
        && r.u32_min <= (v as u32)
        && (v as u32) <= r.u32_max
        && r.s32_min <= (v as u32 as i32)
        && (v as u32 as i32) <= r.s32_max
}

/// An arbitrary consistent abstract scalar plus one concrete member:
/// a well-formed tnum with bounds optionally tightened around two of
/// its members, then normalized.
fn reg_with_member() -> impl Strategy<Value = (RegState, u64)> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(value, mask, pick_a, pick_b, tighten)| {
            let value = value & !mask;
            let a = value | (pick_a & mask);
            let b = value | (pick_b & mask);
            let mut r = RegState::unknown_scalar();
            r.var_off = Tnum::new(value, mask);
            if tighten {
                r.umin = a.min(b);
                r.umax = a.max(b);
            }
            r.normalize();
            (r, a)
        })
}

/// The interpreter's concrete ALU semantics (`crates/runtime` `alu`):
/// wrapping arithmetic, shift counts masked to the bitness, `/0 = 0`,
/// `%0 = dst`.
fn concrete_alu(op: AluOp, is64: bool, dst: u64, src: u64) -> u64 {
    if is64 {
        match op {
            AluOp::Add => dst.wrapping_add(src),
            AluOp::Sub => dst.wrapping_sub(src),
            AluOp::Mul => dst.wrapping_mul(src),
            AluOp::Div => dst.checked_div(src).unwrap_or(0),
            AluOp::Or => dst | src,
            AluOp::And => dst & src,
            AluOp::Lsh => dst.wrapping_shl(src as u32 & 63),
            AluOp::Rsh => dst.wrapping_shr(src as u32 & 63),
            AluOp::Mod => dst.checked_rem(src).unwrap_or(dst),
            AluOp::Xor => dst ^ src,
            AluOp::Arsh => ((dst as i64).wrapping_shr(src as u32 & 63)) as u64,
            _ => unreachable!("not a binary scalar op"),
        }
    } else {
        let d = dst as u32;
        let s = src as u32;
        (match op {
            AluOp::Add => d.wrapping_add(s),
            AluOp::Sub => d.wrapping_sub(s),
            AluOp::Mul => d.wrapping_mul(s),
            AluOp::Div => d.checked_div(s).unwrap_or(0),
            AluOp::Or => d | s,
            AluOp::And => d & s,
            AluOp::Lsh => d.wrapping_shl(s & 31),
            AluOp::Rsh => d.wrapping_shr(s & 31),
            AluOp::Mod => d.checked_rem(s).unwrap_or(d),
            AluOp::Xor => d ^ s,
            AluOp::Arsh => ((d as i32).wrapping_shr(s & 31)) as u32,
            _ => unreachable!("not a binary scalar op"),
        }) as u64
    }
}

proptest! {
    /// The abstract state construction itself is sound: the picked
    /// member survives tightening and normalization.
    #[test]
    fn member_construction((d, x) in reg_with_member()) {
        prop_assert!(admits(&d, x), "{} must admit {:#x}", d.describe(), x);
    }

    /// Membership is preserved by every binary transfer, 64-bit.
    #[test]
    fn transfer64_sound((d, x) in reg_with_member(), (s, y) in reg_with_member(), opi in 0usize..OPS.len()) {
        let op = OPS[opi];
        let mut out = d;
        scalar_transfer(op, true, &mut out, &s);
        let concrete = concrete_alu(op, true, x, y);
        prop_assert!(
            admits(&out, concrete),
            "{:?}64: {:#x} op {:#x} = {:#x} escapes {} (dst {}, src {})",
            op, x, y, concrete, out.describe(), d.describe(), s.describe()
        );
    }

    /// Membership is preserved by every binary transfer, 32-bit
    /// (result zero-extended, as at runtime).
    #[test]
    fn transfer32_sound((d, x) in reg_with_member(), (s, y) in reg_with_member(), opi in 0usize..OPS.len()) {
        let op = OPS[opi];
        let mut out = d;
        scalar_transfer(op, false, &mut out, &s);
        let concrete = concrete_alu(op, false, x, y);
        prop_assert!(
            admits(&out, concrete),
            "{:?}32: {:#x} op {:#x} = {:#x} escapes {} (dst {}, src {})",
            op, x, y, concrete, out.describe(), d.describe(), s.describe()
        );
    }

    /// Known constants fold exactly: a constant `op` constant transfer
    /// yields the concrete result as a known scalar.
    #[test]
    fn transfer_const_folds(x in any::<u64>(), y in any::<u64>(), opi in 0usize..OPS.len()) {
        let op = OPS[opi];
        // Shift counts must be in range for the fold to stay a shift.
        let y = if matches!(op, AluOp::Lsh | AluOp::Rsh | AluOp::Arsh) { y & 63 } else { y };
        let mut out = RegState::known_scalar(x);
        scalar_transfer(op, true, &mut out, &RegState::known_scalar(y));
        let concrete = concrete_alu(op, true, x, y);
        prop_assert!(
            admits(&out, concrete),
            "{:?} const fold: {:#x} op {:#x} = {:#x} escapes {}",
            op, x, y, concrete, out.describe()
        );
    }
}
