//! Unprivileged-mode verification tests: pointer-leak and
//! pointer-comparison restrictions (§2 of the paper discusses how many
//! deployments run unprivileged eBPF with stricter verifier rules).

use bvf_isa::{asm, AluOp, JmpOp, Program, Reg, Size};
use bvf_kernel_sim::helpers::proto::ids as helper;
use bvf_kernel_sim::map::{MapDef, MapType};
use bvf_kernel_sim::progtype::ProgType;
use bvf_kernel_sim::{BugSet, Kernel};
use bvf_verifier::{verify, VerifierOpts};

fn kernel() -> Kernel {
    let mut k = Kernel::new(BugSet::none());
    let mut maps = std::mem::take(&mut k.maps);
    maps.create(
        &mut k.mm,
        MapDef {
            map_type: MapType::Array,
            key_size: 4,
            value_size: 16,
            max_entries: 4,
        },
    )
    .unwrap();
    k.maps = maps;
    k
}

fn unpriv() -> VerifierOpts {
    VerifierOpts {
        unprivileged: true,
        ..Default::default()
    }
}

fn check(k: &Kernel, prog: &Program, pt: ProgType, opts: &VerifierOpts) -> Result<(), String> {
    verify(k, prog, pt, opts)
        .result
        .map(|_| ())
        .map_err(|e| e.msg)
}

fn lookup_then(extra: Vec<bvf_isa::Insn>) -> Program {
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, extra.len() as i16 + 1));
    insns.extend(extra);
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    Program::from_insns(insns)
}

#[test]
fn benign_program_loads_unprivileged() {
    let p = lookup_then(vec![asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 0)]);
    check(&kernel(), &p, ProgType::SocketFilter, &unpriv()).expect("benign program");
}

#[test]
fn prog_type_gate() {
    let p = Program::from_insns(vec![asm::mov64_imm(Reg::R0, 0), asm::exit()]);
    let err = check(&kernel(), &p, ProgType::Kprobe, &unpriv()).unwrap_err();
    assert!(err.contains("not allowed for unprivileged"), "{err}");
    check(&kernel(), &p, ProgType::SocketFilter, &unpriv()).expect("socket filter allowed");
    check(&kernel(), &p, ProgType::Kprobe, &VerifierOpts::default())
        .expect("privileged kprobe allowed");
}

#[test]
fn pointer_store_to_map_rejected() {
    // Leak the stack pointer into a map value.
    let p = lookup_then(vec![asm::stx_mem(Size::Dw, Reg::R0, Reg::R10, 0)]);
    let err = check(&kernel(), &p, ProgType::SocketFilter, &unpriv()).unwrap_err();
    assert!(err.contains("leaks addr"), "{err}");
    check(
        &kernel(),
        &p,
        ProgType::SocketFilter,
        &VerifierOpts::default(),
    )
    .expect("privileged may spill pointers");
}

#[test]
fn pointer_spill_to_stack_still_allowed() {
    let p = Program::from_insns(vec![
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R1, -8),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    check(&kernel(), &p, ProgType::SocketFilter, &unpriv()).expect("stack spills fine");
}

#[test]
fn pointer_comparison_rejected() {
    let p = Program::from_insns(vec![
        asm::mov64_reg(Reg::R2, Reg::R10),
        asm::jmp_reg(JmpOp::Jgt, Reg::R2, Reg::R1, 0),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    let err = check(&kernel(), &p, ProgType::SocketFilter, &unpriv()).unwrap_err();
    assert!(err.contains("pointer comparison prohibited"), "{err}");
    check(
        &kernel(),
        &p,
        ProgType::SocketFilter,
        &VerifierOpts::default(),
    )
    .expect("privileged comparison fine");
}

#[test]
fn null_check_still_allowed() {
    let p = lookup_then(vec![asm::ldx_mem(Size::B, Reg::R3, Reg::R0, 0)]);
    check(&kernel(), &p, ProgType::SocketFilter, &unpriv())
        .expect("null checks are the allowed pointer comparison");
}

#[test]
fn partial_pointer_copy_rejected() {
    let p = Program::from_insns(vec![asm::mov32_reg(Reg::R0, Reg::R10), asm::exit()]);
    let err = check(&kernel(), &p, ProgType::SocketFilter, &unpriv()).unwrap_err();
    assert!(err.contains("partial copy of pointer"), "{err}");
}

#[test]
fn pointer_subtraction_rejected() {
    let p = Program::from_insns(vec![
        asm::mov64_reg(Reg::R2, Reg::R10),
        asm::mov64_reg(Reg::R3, Reg::R10),
        asm::alu64_reg(AluOp::Sub, Reg::R2, Reg::R3),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    let err = check(&kernel(), &p, ProgType::SocketFilter, &unpriv()).unwrap_err();
    assert!(err.contains("pointer subtraction prohibited"), "{err}");
}

#[test]
fn unknown_sign_pointer_arithmetic_rejected() {
    // r4 is a signed-unknown scalar; r0 += r4 is rejected unprivileged.
    let p = lookup_then(vec![
        asm::ldx_mem(Size::Dw, Reg::R4, Reg::R0, 0),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
    ]);
    let err = check(&kernel(), &p, ProgType::SocketFilter, &unpriv()).unwrap_err();
    assert!(err.contains("unknown sign"), "{err}");
    // With a mask establishing the sign, it passes (and a deref bound).
    let ok = lookup_then(vec![
        asm::ldx_mem(Size::Dw, Reg::R4, Reg::R0, 0),
        asm::alu64_imm(AluOp::And, Reg::R4, 7),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    check(&kernel(), &ok, ProgType::SocketFilter, &unpriv()).expect("known-sign arithmetic fine");
}
