//! Property tests: tnum algebra and bounds-maintenance soundness.
//!
//! The central soundness property of the abstract domain: for any abstract
//! values and any concrete members of them, the concrete result of an
//! operation is a member of the abstract result.

use bvf_verifier::types::RegState;
use bvf_verifier::Tnum;
use proptest::prelude::*;

/// An arbitrary well-formed tnum plus one concrete member of it.
fn tnum_with_member() -> impl Strategy<Value = (Tnum, u64)> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(value, mask, pick)| {
        let value = value & !mask; // enforce the invariant
        let member = value | (pick & mask);
        (Tnum::new(value, mask), member)
    })
}

proptest! {
    #[test]
    fn member_containment((t, m) in tnum_with_member()) {
        prop_assert!(t.contains(m));
    }

    #[test]
    fn add_sound((a, x) in tnum_with_member(), (b, y) in tnum_with_member()) {
        prop_assert!(a.add(b).contains(x.wrapping_add(y)));
    }

    #[test]
    fn sub_sound((a, x) in tnum_with_member(), (b, y) in tnum_with_member()) {
        prop_assert!(a.sub(b).contains(x.wrapping_sub(y)));
    }

    #[test]
    fn mul_sound((a, x) in tnum_with_member(), (b, y) in tnum_with_member()) {
        prop_assert!(a.mul(b).contains(x.wrapping_mul(y)));
    }

    #[test]
    fn and_sound((a, x) in tnum_with_member(), (b, y) in tnum_with_member()) {
        prop_assert!(a.and(b).contains(x & y));
    }

    #[test]
    fn or_sound((a, x) in tnum_with_member(), (b, y) in tnum_with_member()) {
        prop_assert!(a.or(b).contains(x | y));
    }

    #[test]
    fn xor_sound((a, x) in tnum_with_member(), (b, y) in tnum_with_member()) {
        prop_assert!(a.xor(b).contains(x ^ y));
    }

    #[test]
    fn shifts_sound((a, x) in tnum_with_member(), s in 0u8..64) {
        prop_assert!(a.lshift(s).contains(x << s));
        prop_assert!(a.rshift(s).contains(x >> s));
        prop_assert!(a.arshift(s, 64).contains(((x as i64) >> s) as u64));
    }

    #[test]
    fn arshift32_sound((a, x) in tnum_with_member(), s in 0u8..32) {
        let concrete = ((x as u32 as i32) >> s) as u32 as u64;
        prop_assert!(a.cast32().arshift(s, 32).contains(concrete));
    }

    #[test]
    fn range_sound(lo in any::<u64>(), hi in any::<u64>(), pick in any::<u64>()) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let t = Tnum::range(lo, hi);
        let member = lo + pick % (hi - lo).wrapping_add(1).max(1);
        if member >= lo && member <= hi {
            prop_assert!(t.contains(member), "{t} must contain {member} in [{lo},{hi}]");
        }
    }

    #[test]
    fn intersect_sound((a, x) in tnum_with_member(), b_seed in any::<u64>()) {
        // Build b as a widening of x so x ∈ a ∩ b.
        let b = Tnum::new(x & !b_seed, b_seed);
        prop_assert!(b.contains(x));
        prop_assert!(a.intersect(b).contains(x));
    }

    #[test]
    fn union_contains_both((a, x) in tnum_with_member(), (b, y) in tnum_with_member()) {
        let u = a.union(b);
        prop_assert!(u.contains(x));
        prop_assert!(u.contains(y));
    }

    #[test]
    fn subset_reflexive_and_unknown_top((a, x) in tnum_with_member()) {
        prop_assert!(a.is_subset_of(a));
        prop_assert!(a.is_subset_of(Tnum::UNKNOWN));
        prop_assert!(Tnum::const_val(x).is_subset_of(a));
    }

    #[test]
    fn cast_members((a, x) in tnum_with_member(), size in 1u8..=8) {
        let keep = if size >= 8 { u64::MAX } else { (1u64 << (size * 8)) - 1 };
        prop_assert!(a.cast(size).contains(x & keep));
    }

    #[test]
    fn subreg_roundtrip((a, x) in tnum_with_member()) {
        let rebuilt = a.clear_subreg().with_subreg(a.subreg());
        prop_assert!(rebuilt.contains(x));
    }
}

proptest! {
    /// Normalization never loses members: a register whose bounds and tnum
    /// both admit value v still admits v after normalize().
    #[test]
    fn normalize_keeps_members((t, m) in tnum_with_member()) {
        let mut r = RegState::unknown_scalar();
        r.var_off = t;
        r.normalize();
        prop_assert!(r.var_off.contains(m));
        prop_assert!(r.umin <= m && m <= r.umax);
        let sm = m as i64;
        prop_assert!(r.smin <= sm && sm <= r.smax);
    }

    /// known_scalar is exactly the singleton abstraction.
    #[test]
    fn known_scalar_is_singleton(v in any::<u64>()) {
        let r = RegState::known_scalar(v);
        prop_assert_eq!(r.const_value(), Some(v));
        prop_assert!(r.bounds_sane());
        prop_assert_eq!(r.umin, v);
        prop_assert_eq!(r.umax, v);
    }
}
