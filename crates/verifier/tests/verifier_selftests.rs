//! Selftest-style end-to-end verifier tests: hand-written programs with
//! expected verdicts, in the spirit of `tools/testing/selftests/bpf`.

use bvf_isa::{asm, AluOp, AtomicOp, JmpOp, Program, Reg, Size};
use bvf_kernel_sim::btf::ids as btf_ids;
use bvf_kernel_sim::helpers::proto::ids as helper;
use bvf_kernel_sim::map::{MapDef, MapType};
use bvf_kernel_sim::progtype::ProgType;
use bvf_kernel_sim::{BugId, BugSet, Kernel};
use bvf_verifier::{verify, KernelVersion, VerifierOpts};

fn kernel_with_maps(bugs: BugSet) -> Kernel {
    let mut k = Kernel::new(bugs);
    let mut maps = std::mem::take(&mut k.maps);
    maps.create(
        &mut k.mm,
        MapDef {
            map_type: MapType::Array,
            key_size: 4,
            value_size: 16,
            max_entries: 4,
        },
    )
    .unwrap();
    maps.create(
        &mut k.mm,
        MapDef {
            map_type: MapType::Hash,
            key_size: 8,
            value_size: 24,
            max_entries: 8,
        },
    )
    .unwrap();
    maps.create(
        &mut k.mm,
        MapDef {
            map_type: MapType::RingBuf,
            key_size: 0,
            value_size: 0,
            max_entries: 4096,
        },
    )
    .unwrap();
    k.maps = maps;
    k
}

fn kernel() -> Kernel {
    kernel_with_maps(BugSet::none())
}

fn accepts(k: &Kernel, prog: &Program, pt: ProgType) {
    let out = verify(k, prog, pt, &VerifierOpts::default());
    if let Err(e) = &out.result {
        panic!("expected accept, got: {e}\nprogram:\n{}", prog.dump());
    }
}

fn rejects(k: &Kernel, prog: &Program, pt: ProgType, needle: &str) {
    let out = verify(k, prog, pt, &VerifierOpts::default());
    match &out.result {
        Ok(_) => panic!(
            "expected rejection containing {needle:?}, got accept\nprogram:\n{}",
            prog.dump()
        ),
        Err(e) => assert!(
            e.msg.contains(needle),
            "expected {needle:?} in {:?}\nprogram:\n{}",
            e.msg,
            prog.dump()
        ),
    }
}

// ---- basics ----------------------------------------------------------------

#[test]
fn minimal_program_accepted() {
    let p = Program::from_insns(vec![asm::mov64_imm(Reg::R0, 0), asm::exit()]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn exit_without_r0_rejected() {
    let p = Program::from_insns(vec![asm::exit()]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "R0 !read_ok");
}

#[test]
fn uninitialized_register_read_rejected() {
    let p = Program::from_insns(vec![asm::mov64_reg(Reg::R0, Reg::R5), asm::exit()]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "!read_ok");
}

#[test]
fn alu_on_uninitialized_rejected() {
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R0, 0),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R7),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "!read_ok");
}

#[test]
fn exit_with_pointer_r0_rejected() {
    let p = Program::from_insns(vec![asm::mov64_reg(Reg::R0, Reg::R10), asm::exit()]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "At program exit");
}

#[test]
fn division_by_zero_imm_rejected() {
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R0, 10),
        asm::alu64_imm(AluOp::Div, Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "division by zero");
}

#[test]
fn division_by_unknown_reg_accepted() {
    // Runtime semantics define x/0 = 0, so an unknown divisor is fine.
    let p = Program::from_insns(vec![
        asm::ldx_mem(Size::W, Reg::R0, Reg::R1, 0),
        asm::mov64_imm(Reg::R2, 10),
        asm::alu64_reg(AluOp::Div, Reg::R2, Reg::R0),
        asm::mov64_reg(Reg::R0, Reg::R2),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn invalid_shift_rejected() {
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R0, 1),
        asm::alu64_imm(AluOp::Lsh, Reg::R0, 64),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "invalid shift");
    let p32 = Program::from_insns(vec![
        asm::mov64_imm(Reg::R0, 1),
        asm::alu32_imm(AluOp::Lsh, Reg::R0, 32),
        asm::exit(),
    ]);
    rejects(&kernel(), &p32, ProgType::SocketFilter, "invalid shift");
}

// ---- stack -----------------------------------------------------------------

#[test]
fn stack_write_read_roundtrip_accepted() {
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R1, 42),
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R1, -8),
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R10, -8),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn uninitialized_stack_read_rejected() {
    let p = Program::from_insns(vec![
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R10, -8),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "uninitialized");
}

#[test]
fn stack_out_of_bounds_rejected() {
    let p = Program::from_insns(vec![
        asm::st_mem(Size::Dw, Reg::R10, -520, 0),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "invalid stack");
    let p2 = Program::from_insns(vec![
        asm::st_mem(Size::Dw, Reg::R10, 0, 0),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p2, ProgType::SocketFilter, "invalid stack");
    // A store straddling the top of the stack.
    let p3 = Program::from_insns(vec![
        asm::st_mem(Size::Dw, Reg::R10, -4, 0),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p3, ProgType::SocketFilter, "invalid stack");
}

#[test]
fn pointer_spill_fill_preserves_type() {
    // Spill the ctx pointer, fill it back, and use it: must still be ctx.
    let p = Program::from_insns(vec![
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R1, -8),
        asm::ldx_mem(Size::Dw, Reg::R2, Reg::R10, -8),
        asm::ldx_mem(Size::W, Reg::R0, Reg::R2, 0),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn partial_overwrite_corrupts_spill() {
    // Overwriting one byte of a spilled pointer turns the slot to MISC;
    // filling and dereferencing must fail.
    let p = Program::from_insns(vec![
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R1, -8),
        asm::st_mem(Size::B, Reg::R10, -5, 7),
        asm::ldx_mem(Size::Dw, Reg::R2, Reg::R10, -8),
        asm::ldx_mem(Size::W, Reg::R0, Reg::R2, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "invalid mem access");
}

#[test]
fn variable_stack_access_rejected() {
    let p = Program::from_insns(vec![
        asm::ldx_mem(Size::W, Reg::R2, Reg::R1, 0),
        asm::mov64_reg(Reg::R3, Reg::R10),
        asm::alu64_reg(AluOp::Sub, Reg::R3, Reg::R2),
        asm::st_mem(Size::B, Reg::R3, 0, 1),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(
        &kernel(),
        &p,
        ProgType::SocketFilter,
        "variable stack access",
    );
}

// ---- context ---------------------------------------------------------------

#[test]
fn ctx_read_accepted_and_bad_offset_rejected() {
    let p = Program::from_insns(vec![
        asm::ldx_mem(Size::W, Reg::R0, Reg::R1, 0),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);

    let bad = Program::from_insns(vec![
        asm::ldx_mem(Size::W, Reg::R0, Reg::R1, 108),
        asm::exit(),
    ]);
    rejects(
        &kernel(),
        &bad,
        ProgType::SocketFilter,
        "invalid bpf_context access",
    );
}

#[test]
fn ctx_write_rules() {
    // mark (off 8) is writable.
    let p = Program::from_insns(vec![
        asm::st_mem(Size::W, Reg::R1, 8, 1),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
    // len (off 0) is read-only.
    let bad = Program::from_insns(vec![
        asm::st_mem(Size::W, Reg::R1, 0, 1),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(
        &kernel(),
        &bad,
        ProgType::SocketFilter,
        "invalid bpf_context access",
    );
}

// ---- maps ------------------------------------------------------------------

fn lookup_prog(extra: Vec<bvf_isa::Insn>) -> Program {
    // Canonical lookup: key on stack, call, null check, then `extra`.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, extra.len() as i16 + 1));
    insns.extend(extra);
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    Program::from_insns(insns)
}

#[test]
fn map_lookup_and_deref_accepted() {
    let p = lookup_prog(vec![asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 0)]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn map_value_deref_without_null_check_rejected() {
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 0));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    rejects(
        &kernel(),
        &Program::from_insns(insns),
        ProgType::SocketFilter,
        "map_value_or_null",
    );
}

#[test]
fn map_value_oob_rejected() {
    // value_size is 16; offset 16 is one past the end for an 8-byte read.
    let p = lookup_prog(vec![asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 16)]);
    rejects(
        &kernel(),
        &p,
        ProgType::SocketFilter,
        "invalid access to map_value",
    );
    let p = lookup_prog(vec![asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 8)]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
    let p = lookup_prog(vec![asm::ldx_mem(Size::B, Reg::R3, Reg::R0, -1)]);
    rejects(
        &kernel(),
        &p,
        ProgType::SocketFilter,
        "invalid access to map_value",
    );
}

#[test]
fn map_value_bounded_variable_offset_accepted() {
    // Load an unknown u32, bound it to [0, 8], use as a value offset.
    let p = lookup_prog(vec![
        asm::ldx_mem(Size::W, Reg::R4, Reg::R0, 0),
        asm::jmp_imm(JmpOp::Jgt, Reg::R4, 8, 2),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn map_value_unbounded_variable_offset_rejected() {
    let p = lookup_prog(vec![
        asm::ldx_mem(Size::W, Reg::R4, Reg::R0, 0),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    rejects(
        &kernel(),
        &p,
        ProgType::SocketFilter,
        "invalid access to map_value",
    );
}

#[test]
fn map_ptr_deref_rejected() {
    let mut insns = asm::ld_map_fd(Reg::R1, 0).to_vec();
    insns.push(asm::ldx_mem(Size::Dw, Reg::R0, Reg::R1, 0));
    insns.push(asm::exit());
    rejects(
        &kernel(),
        &Program::from_insns(insns),
        ProgType::SocketFilter,
        "invalid mem access 'map_ptr'",
    );
}

#[test]
fn bad_map_fd_rejected() {
    let mut insns = asm::ld_map_fd(Reg::R1, 99).to_vec();
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    rejects(
        &kernel(),
        &Program::from_insns(insns),
        ProgType::SocketFilter,
        "is not a map",
    );
}

#[test]
fn helper_wrong_arg_type_rejected() {
    // R1 must be a map pointer for lookup; pass the ctx instead.
    let p = Program::from_insns(vec![
        asm::mov64_reg(Reg::R2, Reg::R10),
        asm::alu64_imm(AluOp::Add, Reg::R2, -8),
        asm::st_mem(Size::W, Reg::R2, 0, 1),
        asm::call_helper(helper::MAP_LOOKUP_ELEM as i32),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "expected=map_ptr");
}

#[test]
fn helper_uninitialized_key_rejected() {
    let mut insns = asm::ld_map_fd(Reg::R1, 0).to_vec();
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    rejects(
        &kernel(),
        &Program::from_insns(insns),
        ProgType::SocketFilter,
        "uninitialized",
    );
}

#[test]
fn unknown_helper_rejected() {
    let p = Program::from_insns(vec![asm::call_helper(9999), asm::exit()]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "invalid func");
}

// ---- jumps and bounds -------------------------------------------------------

#[test]
fn dead_branch_not_explored() {
    // `if 1 == 1` always jumps; the fall-through would be invalid but is
    // dead code... which the kernel still verifies reachability for; here
    // the fall-through contains an uninitialized read but is unreachable
    // only via branch analysis.
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R0, 1),
        asm::jmp_imm(JmpOp::Jeq, Reg::R0, 1, 1),
        asm::mov64_reg(Reg::R0, Reg::R9), // dead
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn bounded_loop_accepted() {
    // for (r6 = 0; r6 < 5; r6++) {}
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R6, 0),
        asm::alu64_imm(AluOp::Add, Reg::R6, 1),
        asm::jmp_imm(JmpOp::Jlt, Reg::R6, 5, -2),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn unbounded_loop_rejected() {
    let p = Program::from_insns(vec![asm::mov64_imm(Reg::R0, 0), asm::ja(-2), asm::exit()]);
    rejects(
        &kernel(),
        &p,
        ProgType::SocketFilter,
        "infinite loop detected",
    );
}

#[test]
fn jset_and_range_refinement() {
    // Bound r2 via unsigned comparison then use as map-value offset.
    let p = lookup_prog(vec![
        asm::ldx_mem(Size::W, Reg::R4, Reg::R0, 0),
        asm::alu64_imm(AluOp::And, Reg::R4, 7),
        asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4),
        asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

// ---- packets ----------------------------------------------------------------

#[test]
fn packet_access_requires_range_check() {
    // Load data/data_end, compare, then read one byte.
    let p = Program::from_insns(vec![
        asm::ldx_mem(Size::Dw, Reg::R2, Reg::R1, 0), // data (xdp)
        asm::ldx_mem(Size::Dw, Reg::R3, Reg::R1, 8), // data_end
        asm::mov64_reg(Reg::R4, Reg::R2),
        asm::alu64_imm(AluOp::Add, Reg::R4, 8),
        asm::jmp_reg(JmpOp::Jgt, Reg::R4, Reg::R3, 2),
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R2, 0),
        asm::mov64_imm(Reg::R0, 0),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::Xdp);

    // Without the check: rejected.
    let bad = Program::from_insns(vec![
        asm::ldx_mem(Size::Dw, Reg::R2, Reg::R1, 0),
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R2, 0),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &bad, ProgType::Xdp, "invalid access to packet");
}

#[test]
fn packet_access_beyond_checked_range_rejected() {
    let p = Program::from_insns(vec![
        asm::ldx_mem(Size::Dw, Reg::R2, Reg::R1, 0),
        asm::ldx_mem(Size::Dw, Reg::R3, Reg::R1, 8),
        asm::mov64_reg(Reg::R4, Reg::R2),
        asm::alu64_imm(AluOp::Add, Reg::R4, 8),
        asm::jmp_reg(JmpOp::Jgt, Reg::R4, Reg::R3, 1),
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R2, 4), // bytes 4..12 > 8
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::Xdp, "invalid access to packet");
}

// ---- atomics ----------------------------------------------------------------

#[test]
fn atomic_on_stack_accepted() {
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R1, 1),
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R1, -8),
        asm::atomic(
            AtomicOp::Add { fetch: false },
            Size::Dw,
            Reg::R10,
            Reg::R1,
            -8,
        ),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn atomic_on_ctx_rejected() {
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R2, 1),
        asm::atomic(AtomicOp::Add { fetch: false }, Size::W, Reg::R1, Reg::R2, 8),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(
        &kernel(),
        &p,
        ProgType::SocketFilter,
        "atomic access to ctx",
    );
}

// ---- pointer arithmetic -------------------------------------------------------

#[test]
fn pointer_mul_rejected() {
    let p = Program::from_insns(vec![
        asm::mov64_reg(Reg::R2, Reg::R10),
        asm::alu64_imm(AluOp::Mul, Reg::R2, 2),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "prohibited");
}

#[test]
fn ptr_minus_ptr_gives_scalar() {
    let p = Program::from_insns(vec![
        asm::mov64_reg(Reg::R2, Reg::R10),
        asm::mov64_reg(Reg::R3, Reg::R10),
        asm::alu64_imm(AluOp::Add, Reg::R3, -16),
        asm::alu64_reg(AluOp::Sub, Reg::R2, Reg::R3),
        asm::mov64_reg(Reg::R0, Reg::R2),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn alu_on_nullable_pointer_rejected_when_fixed() {
    // CVE-2022-23222 shape: arithmetic on map_value_or_null.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R0, 8));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    let p = Program::from_insns(insns);
    rejects(&kernel(), &p, ProgType::SocketFilter, "null-check it first");
    // With the CVE injected, the same program is (incorrectly) accepted...
    let buggy = kernel_with_maps(BugSet::with(&[BugId::CveAluOnNullablePtr]));
    let out = verify(&buggy, &p, ProgType::SocketFilter, &VerifierOpts::default());
    assert!(
        out.result.is_ok(),
        "CVE kernel accepts: {:?}",
        out.result.err()
    );
}

// ---- BTF --------------------------------------------------------------------

#[test]
fn task_btf_access_and_bug2() {
    // get_current_task_btf, then read pid (valid).
    let p = Program::from_insns(vec![
        asm::call_helper(helper::GET_CURRENT_TASK_BTF as i32),
        asm::ldx_mem(Size::W, Reg::R0, Reg::R0, 0),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::Kprobe);

    // Read straddling the end: off 124 size 8 (task_struct is 128).
    let oob = Program::from_insns(vec![
        asm::call_helper(helper::GET_CURRENT_TASK_BTF as i32),
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R0, 124),
        asm::exit(),
    ]);
    rejects(
        &kernel(),
        &oob,
        ProgType::Kprobe,
        "invalid access to btf_id",
    );
    // Bug #2: the buggy size-ignoring bound check accepts it.
    let buggy = kernel_with_maps(BugSet::with(&[BugId::TaskStructOob]));
    let out = verify(&buggy, &oob, ProgType::Kprobe, &VerifierOpts::default());
    assert!(
        out.result.is_ok(),
        "bug2 kernel accepts: {:?}",
        out.result.err()
    );
}

#[test]
fn btf_pointer_field_chain() {
    // task->parent->pid
    let p = Program::from_insns(vec![
        asm::call_helper(helper::GET_CURRENT_TASK_BTF as i32),
        asm::ldx_mem(Size::Dw, Reg::R1, Reg::R0, 32),
        asm::ldx_mem(Size::W, Reg::R0, Reg::R1, 0),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::Kprobe);
}

#[test]
fn btf_write_rejected() {
    let p = Program::from_insns(vec![
        asm::call_helper(helper::GET_CURRENT_TASK_BTF as i32),
        asm::st_mem(Size::W, Reg::R0, 0, 7),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::Kprobe, "writes to BTF");
}

// ---- nullness propagation (bug #1) -------------------------------------------

fn nullness_prop_prog() -> Program {
    // Listing 2 shape: r6 = btf object (actually null at runtime);
    // r0 = map_lookup (null at runtime); if r0 == r6: deref r0.
    let mut insns = Vec::new();
    insns.extend(asm::ld_btf_id(Reg::R6, btf_ids::DEBUG_OBJ));
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    // if r0 != r6 goto exit — in the equal path the buggy verifier marks
    // r0 non-null and allows the deref.
    insns.push(asm::jmp_reg(JmpOp::Jne, Reg::R0, Reg::R6, 1));
    insns.push(asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 0));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    Program::from_insns(insns)
}

#[test]
fn nullness_propagation_bug1() {
    let p = nullness_prop_prog();
    // Fixed verifier: the BTF filter stops the propagation; the deref in
    // the equal path still sees a nullable pointer.
    rejects(&kernel(), &p, ProgType::Kprobe, "map_value_or_null");
    // Buggy verifier: accepted.
    let buggy = kernel_with_maps(BugSet::with(&[BugId::NullnessPropagation]));
    let out = verify(&buggy, &p, ProgType::Kprobe, &VerifierOpts::default());
    assert!(
        out.result.is_ok(),
        "bug1 kernel accepts: {:?}",
        out.result.err()
    );
}

#[test]
fn nullness_propagation_legitimate_case_still_works() {
    // The legitimate optimization: comparing against a known non-null
    // NON-BTF pointer (the stack pointer) propagates in both kernels.
    let mut insns = Vec::new();
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::jmp_reg(JmpOp::Jne, Reg::R0, Reg::R10, 1));
    insns.push(asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 0));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    accepts(
        &kernel(),
        &Program::from_insns(insns),
        ProgType::SocketFilter,
    );
}

// ---- NMI / helper restrictions (bug #6) ---------------------------------------

#[test]
fn send_signal_in_nmi_prog_bug6() {
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R1, 9),
        asm::call_helper(helper::SEND_SIGNAL as i32),
        asm::mov64_imm(Reg::R0, 0),
        asm::exit(),
    ]);
    // PerfEvent programs run in NMI: the fixed verifier rejects.
    rejects(&kernel(), &p, ProgType::PerfEvent, "not allowed in NMI");
    // Kprobe context: fine either way.
    accepts(&kernel(), &p, ProgType::Kprobe);
    // Bug #6: the missing check admits the NMI program.
    let buggy = kernel_with_maps(BugSet::with(&[BugId::SignalSendPanic]));
    let out = verify(&buggy, &p, ProgType::PerfEvent, &VerifierOpts::default());
    assert!(out.result.is_ok());
}

// ---- kfuncs (bug #3) -----------------------------------------------------------

#[test]
fn kfunc_gating_by_version() {
    use bvf_kernel_sim::helpers::kfunc::ids as kf;
    let p = Program::from_insns(vec![asm::call_kfunc(kf::KTIME_COARSE as i32), asm::exit()]);
    let k = kernel();
    let old = VerifierOpts {
        version: KernelVersion::V5_15,
        ..Default::default()
    };
    let out = verify(&k, &p, ProgType::Kprobe, &old);
    assert!(out.result.is_err(), "v5.15 has no kfuncs");
    accepts(&k, &p, ProgType::Kprobe);
}

#[test]
fn kfunc_stale_bounds_bug3() {
    use bvf_kernel_sim::helpers::kfunc::ids as kf;
    // r0 = 4 (tightly bounded); call kfunc; use r0 as map-value offset.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 4)];
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
    insns.push(asm::mov64_reg(Reg::R6, Reg::R0));
    insns.push(asm::call_kfunc(kf::KTIME_COARSE as i32));
    // NOTE: kfunc clobbers R0 with its return; with bug #3 the verifier
    // keeps R0's pre-call bounds [4,4] alive... but R0 was reassigned by
    // the call-return modeling itself. The stale state matters because
    // the buggy path reuses the old R0 state object.
    insns.push(asm::mov64_reg(Reg::R7, Reg::R0));
    // Use R7 (kfunc result) as map value offset after bound... no bound!
    // Look up and add.
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 3));
    insns.push(asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R7));
    insns.push(asm::ldx_mem(Size::B, Reg::R3, Reg::R0, 0));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    let p = Program::from_insns(insns);
    // Fixed: R7 is unbounded → rejected.
    rejects(&kernel(), &p, ProgType::Kprobe, "min value is negative");
    // Bug #3: stale [4,4] bounds survive the kfunc call → accepted.
    let buggy = kernel_with_maps(BugSet::with(&[BugId::KfuncBacktrack]));
    let out = verify(&buggy, &p, ProgType::Kprobe, &VerifierOpts::default());
    assert!(
        out.result.is_ok(),
        "bug3 kernel accepts: {:?}",
        out.result.err()
    );
}

// ---- references -----------------------------------------------------------------

#[test]
fn ringbuf_reserve_requires_release() {
    // Reserve without submit: leaked reference.
    let mut insns = asm::ld_map_fd(Reg::R1, 2).to_vec();
    insns.push(asm::mov64_imm(Reg::R2, 16));
    insns.push(asm::mov64_imm(Reg::R3, 0));
    insns.push(asm::call_helper(helper::RINGBUF_RESERVE as i32));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    rejects(
        &kernel(),
        &Program::from_insns(insns),
        ProgType::Kprobe,
        "Unreleased reference",
    );
}

#[test]
fn ringbuf_reserve_submit_accepted() {
    let mut insns = asm::ld_map_fd(Reg::R1, 2).to_vec();
    insns.push(asm::mov64_imm(Reg::R2, 16));
    insns.push(asm::mov64_imm(Reg::R3, 0));
    insns.push(asm::call_helper(helper::RINGBUF_RESERVE as i32));
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 4));
    insns.push(asm::st_mem(Size::Dw, Reg::R0, 0, 42));
    insns.push(asm::mov64_reg(Reg::R1, Reg::R0));
    insns.push(asm::mov64_imm(Reg::R2, 0));
    insns.push(asm::call_helper(helper::RINGBUF_SUBMIT as i32));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    accepts(&kernel(), &Program::from_insns(insns), ProgType::Kprobe);
}

#[test]
fn ringbuf_record_oob_rejected() {
    let mut insns = asm::ld_map_fd(Reg::R1, 2).to_vec();
    insns.push(asm::mov64_imm(Reg::R2, 16));
    insns.push(asm::mov64_imm(Reg::R3, 0));
    insns.push(asm::call_helper(helper::RINGBUF_RESERVE as i32));
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 5));
    insns.push(asm::st_mem(Size::Dw, Reg::R0, 16, 42)); // 16..24 > 16
    insns.push(asm::mov64_reg(Reg::R1, Reg::R0));
    insns.push(asm::mov64_imm(Reg::R2, 0));
    insns.push(asm::call_helper(helper::RINGBUF_SUBMIT as i32));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    rejects(
        &kernel(),
        &Program::from_insns(insns),
        ProgType::Kprobe,
        "invalid access to mem",
    );
}

// ---- subprograms ------------------------------------------------------------------

#[test]
fn subprog_call_and_return() {
    // main: r1 = 7; call f; r0 already set; exit.
    // f: r0 = r1 * 2; exit.
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R1, 7),
        asm::call_pseudo(1),
        asm::exit(),
        asm::mov64_reg(Reg::R0, Reg::R1),
        asm::alu64_imm(AluOp::Mul, Reg::R0, 2),
        asm::exit(),
    ]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
}

#[test]
fn subprog_r6_not_visible_in_callee() {
    // Callee reads R6 which the caller set — callee registers start
    // uninitialized except R1..R5.
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R6, 1),
        asm::call_pseudo(1),
        asm::exit(),
        asm::mov64_reg(Reg::R0, Reg::R6),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "!read_ok");
}

#[test]
fn subprog_pointer_return_rejected() {
    let p = Program::from_insns(vec![
        asm::mov64_imm(Reg::R1, 7),
        asm::call_pseudo(1),
        asm::exit(),
        asm::mov64_reg(Reg::R0, Reg::R10),
        asm::exit(),
    ]);
    rejects(&kernel(), &p, ProgType::SocketFilter, "must be a scalar");
}

// ---- legacy loads ------------------------------------------------------------------

#[test]
fn ld_abs_allowed_only_for_skb_types() {
    let insn = bvf_isa::Insn::new(
        bvf_isa::Class::Ld as u8 | Size::W as u8 | bvf_isa::opcode::mode::ABS,
        0,
        0,
        0,
        4,
    );
    let p = Program::from_insns(vec![insn, asm::exit()]);
    accepts(&kernel(), &p, ProgType::SocketFilter);
    rejects(
        &kernel(),
        &p,
        ProgType::Xdp,
        "not allowed for this program type",
    );
}
