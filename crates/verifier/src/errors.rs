//! Verifier rejection diagnostics.
//!
//! Every rejection carries two classifications: the coarse [`ErrorKind`]
//! (the errno the `bpf(2)` syscall surfaces — what a userspace loader
//! sees) and the fine-grained [`RejectReason`] (which rule fired — what
//! a fuzzer or a human debugging a rejection needs). The reason codes,
//! together with the [`VerifierPhase`] that fired them and the offending
//! operand, are the repo's answer to the "diagnostic gap": errno-level
//! reporting collapses dozens of distinct rules into two values
//! (`EACCES`/`EINVAL`), which makes rejection statistics useless for
//! steering generation.

use serde::{Deserialize, Serialize};

/// Category of a verifier rejection, mapped to the errno the `bpf(2)`
/// syscall would return — the acceptance-rate experiment (§6.3) inspects
/// these, with `EACCES` and `EINVAL` dominating for random generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Malformed program or instruction (`EINVAL`).
    Invalid,
    /// A safety property was violated (`EACCES`).
    Access,
    /// Resource limits exceeded (`E2BIG`).
    TooBig,
    /// Feature not available in this kernel version (`EOPNOTSUPP`).
    NotSupported,
}

impl ErrorKind {
    /// The errno value the syscall layer surfaces.
    pub fn errno(self) -> i32 {
        match self {
            ErrorKind::Invalid => 22,
            ErrorKind::Access => 13,
            ErrorKind::TooBig => 7,
            ErrorKind::NotSupported => 95,
        }
    }

    /// The errno's symbolic name.
    pub fn errno_name(self) -> &'static str {
        match self {
            ErrorKind::Invalid => "EINVAL",
            ErrorKind::Access => "EACCES",
            ErrorKind::TooBig => "E2BIG",
            ErrorKind::NotSupported => "EOPNOTSUPP",
        }
    }
}

/// The verification phase a rejection fired in, mirroring the pass
/// structure of [`crate::verify`]: structural pre-checks, the main
/// symbolic walk, BVF's sanitation instrumentation, and the rewrite
/// (fixup) pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VerifierPhase {
    /// Structural validity (decode, jump targets, register ranges).
    Structure,
    /// The main symbolic walk (`do_check`).
    DoCheck,
    /// BVF's sanitation instrumentation over the verified program.
    Sanitize,
    /// Pseudo-instruction resolution and misc fixups.
    Fixup,
}

impl VerifierPhase {
    /// Stable snake_case name used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            VerifierPhase::Structure => "structure",
            VerifierPhase::DoCheck => "do_check",
            VerifierPhase::Sanitize => "sanitize",
            VerifierPhase::Fixup => "fixup",
        }
    }
}

/// The specific verifier rule a rejection fired — one stable code per
/// family of checks, fine enough to steer generation and coarse enough
/// that campaign-level counters stay readable.
///
/// Codes are append-only: reports and steering key on [`Self::name`],
/// so renaming or reusing a code would silently corrupt longitudinal
/// comparisons across campaign snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RejectReason {
    /// Empty program, undecodable slot, hidden register, frame-pointer
    /// write, or an unknown `ldimm64` pseudo source.
    MalformedInsn,
    /// A jump lands outside the program or inside an `LD_IMM64` pair.
    JumpOutOfBounds,
    /// The program can fall through past its end (structurally or on an
    /// explored path).
    FellOffEnd,
    /// Program type not loadable without `CAP_BPF`.
    UnprivProgType,
    /// Instruction budget exhausted (`BPF_COMPLEXITY_LIMIT_INSNS`) or the
    /// program exceeds the slot limit.
    ComplexityLimit,
    /// A path revisits an instruction in a state subsumed by its own
    /// ancestor — the abstract loop can make no progress.
    BackEdgeLimit,
    /// An `ldimm64` or fixup references an fd that is not a map.
    BadMapFd,
    /// Direct map-value access on a non-array map or past `value_size`.
    BadDirectValue,
    /// Unresolvable BTF id, or an invalid access through a BTF pointer
    /// (write, variable offset, negative or out-of-range offset).
    BtfAccessInvalid,
    /// Instruction class not available for this program type or kernel
    /// version (legacy packet loads, `BPF_MEMSX`).
    UnsupportedInsn,
    /// BPF-to-BPF call stack exceeds the frame limit.
    CallDepthLimit,
    /// BPF-to-BPF call target is not an instruction start.
    BadCallTarget,
    /// `R0` holds a non-scalar at a program or subprog exit.
    BadReturnValue,
    /// A source operand (or `R0` at exit) is read before initialization.
    UninitRegRead,
    /// An acquired reference is still live at program exit.
    UnreleasedReference,
    /// A path makes a division or modulo by a known-zero divisor
    /// unavoidable.
    DivByZeroPath,
    /// Shift amount out of range for the operand width.
    InvalidShift,
    /// Pointer arithmetic that is categorically forbidden: neg/byteswap
    /// or 32-bit ALU on pointers, pointer+pointer, mixed-type pointer
    /// subtraction, arithmetic on `_or_null` or map-struct pointers.
    PtrArithForbidden,
    /// Context access with variable offset, negative offset, or outside
    /// the context layout.
    CtxAccessInvalid,
    /// Pointer arithmetic pushed an offset outside the trackable range.
    PtrArithOutOfRange,
    /// Pointer operation additionally restricted for unprivileged loads
    /// (leaks, comparisons, partial copies, unknown-sign arithmetic).
    UnprivPtrOp,
    /// Atomic with a non-scalar operand or on unsupported memory.
    AtomicOpInvalid,
    /// Dereference of a possibly-null pointer before the null check.
    NullPtrDeref,
    /// Packet access out of range, unverified, or written when read-only.
    PacketAccessInvalid,
    /// Memory access through a register type that supports none
    /// (`map_ptr`, `scalar`).
    MemAccessInvalid,
    /// Bounded-region (map value, allocated mem) access out of range or
    /// with a possibly-negative offset.
    MemOobAccess,
    /// Stack access outside the frame, unaligned-variable, or through an
    /// out-of-bounds indirect helper argument.
    StackOobAccess,
    /// Read from a stack slot never written on this path.
    StackUninitRead,
    /// Pointer comparison forbidden for this operand width or privilege.
    PtrComparisonForbidden,
    /// Unknown/unavailable helper id, wrong program type, or a helper
    /// forbidden in this context.
    HelperInvalid,
    /// Helper argument register has the wrong type for the prototype.
    HelperArgTypeMismatch,
    /// Helper size/bounds argument out of range or unbounded.
    HelperArgBadRange,
    /// Kfunc call unsupported in this kernel version or id unknown.
    KfuncInvalid,
    /// Release of a reference the program does not own.
    InvalidRefRelease,
    /// BVF's sanitation instrumentation could not rewrite the program.
    SanitizeFailed,
}

impl RejectReason {
    /// Every reason code, in declaration order (reports iterate this).
    pub const ALL: [RejectReason; 35] = [
        RejectReason::MalformedInsn,
        RejectReason::JumpOutOfBounds,
        RejectReason::FellOffEnd,
        RejectReason::UnprivProgType,
        RejectReason::ComplexityLimit,
        RejectReason::BackEdgeLimit,
        RejectReason::BadMapFd,
        RejectReason::BadDirectValue,
        RejectReason::BtfAccessInvalid,
        RejectReason::UnsupportedInsn,
        RejectReason::CallDepthLimit,
        RejectReason::BadCallTarget,
        RejectReason::BadReturnValue,
        RejectReason::UninitRegRead,
        RejectReason::UnreleasedReference,
        RejectReason::DivByZeroPath,
        RejectReason::InvalidShift,
        RejectReason::PtrArithForbidden,
        RejectReason::CtxAccessInvalid,
        RejectReason::PtrArithOutOfRange,
        RejectReason::UnprivPtrOp,
        RejectReason::AtomicOpInvalid,
        RejectReason::NullPtrDeref,
        RejectReason::PacketAccessInvalid,
        RejectReason::MemAccessInvalid,
        RejectReason::MemOobAccess,
        RejectReason::StackOobAccess,
        RejectReason::StackUninitRead,
        RejectReason::PtrComparisonForbidden,
        RejectReason::HelperInvalid,
        RejectReason::HelperArgTypeMismatch,
        RejectReason::HelperArgBadRange,
        RejectReason::KfuncInvalid,
        RejectReason::InvalidRefRelease,
        RejectReason::SanitizeFailed,
    ];

    /// Stable snake_case name used as the registry counter suffix, the
    /// JSONL trace value, and the `bvf report` row label.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::MalformedInsn => "malformed_insn",
            RejectReason::JumpOutOfBounds => "jump_out_of_bounds",
            RejectReason::FellOffEnd => "fell_off_end",
            RejectReason::UnprivProgType => "unpriv_prog_type",
            RejectReason::ComplexityLimit => "complexity_limit",
            RejectReason::BackEdgeLimit => "back_edge_limit",
            RejectReason::BadMapFd => "bad_map_fd",
            RejectReason::BadDirectValue => "bad_direct_value",
            RejectReason::BtfAccessInvalid => "btf_access_invalid",
            RejectReason::UnsupportedInsn => "unsupported_insn",
            RejectReason::CallDepthLimit => "call_depth_limit",
            RejectReason::BadCallTarget => "bad_call_target",
            RejectReason::BadReturnValue => "bad_return_value",
            RejectReason::UninitRegRead => "uninit_reg_read",
            RejectReason::UnreleasedReference => "unreleased_reference",
            RejectReason::DivByZeroPath => "div_by_zero_path",
            RejectReason::InvalidShift => "invalid_shift",
            RejectReason::PtrArithForbidden => "ptr_arith_forbidden",
            RejectReason::CtxAccessInvalid => "ctx_access_invalid",
            RejectReason::PtrArithOutOfRange => "ptr_arith_out_of_range",
            RejectReason::UnprivPtrOp => "unpriv_ptr_op",
            RejectReason::AtomicOpInvalid => "atomic_op_invalid",
            RejectReason::NullPtrDeref => "null_ptr_deref",
            RejectReason::PacketAccessInvalid => "packet_access_invalid",
            RejectReason::MemAccessInvalid => "mem_access_invalid",
            RejectReason::MemOobAccess => "mem_oob_access",
            RejectReason::StackOobAccess => "stack_oob_access",
            RejectReason::StackUninitRead => "stack_uninit_read",
            RejectReason::PtrComparisonForbidden => "ptr_comparison_forbidden",
            RejectReason::HelperInvalid => "helper_invalid",
            RejectReason::HelperArgTypeMismatch => "helper_arg_type_mismatch",
            RejectReason::HelperArgBadRange => "helper_arg_bad_range",
            RejectReason::KfuncInvalid => "kfunc_invalid",
            RejectReason::InvalidRefRelease => "invalid_ref_release",
            RejectReason::SanitizeFailed => "sanitize_failed",
        }
    }
}

/// One verifier rejection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifierError {
    /// Rejection category (errno class).
    pub kind: ErrorKind,
    /// The specific rule that fired.
    pub reason: RejectReason,
    /// The phase that fired it.
    pub phase: VerifierPhase,
    /// Instruction index the rejection fired at.
    pub insn_idx: usize,
    /// The offending register operand, when one exists.
    pub reg: Option<u8>,
    /// The offending stack offset, for stack-slot rejections.
    pub stack_off: Option<i32>,
    /// Kernel-log style message.
    pub msg: String,
}

impl VerifierError {
    /// Creates an error (phase defaults to the main walk; `run()`
    /// re-tags errors surfaced by the other passes).
    pub fn new(
        kind: ErrorKind,
        reason: RejectReason,
        insn_idx: usize,
        msg: impl Into<String>,
    ) -> VerifierError {
        VerifierError {
            kind,
            reason,
            phase: VerifierPhase::DoCheck,
            insn_idx,
            reg: None,
            stack_off: None,
            msg: msg.into(),
        }
    }

    /// `EINVAL`-class error.
    pub fn invalid(reason: RejectReason, insn_idx: usize, msg: impl Into<String>) -> VerifierError {
        VerifierError::new(ErrorKind::Invalid, reason, insn_idx, msg)
    }

    /// `EACCES`-class error.
    pub fn access(reason: RejectReason, insn_idx: usize, msg: impl Into<String>) -> VerifierError {
        VerifierError::new(ErrorKind::Access, reason, insn_idx, msg)
    }

    /// Tags the phase the error fired in.
    pub fn in_phase(mut self, phase: VerifierPhase) -> VerifierError {
        self.phase = phase;
        self
    }

    /// Attaches the offending register operand.
    pub fn with_reg(mut self, reg: u8) -> VerifierError {
        self.reg = Some(reg);
        self
    }

    /// Attaches the offending stack offset.
    pub fn with_stack_off(mut self, off: i32) -> VerifierError {
        self.stack_off = Some(off);
        self
    }
}

impl std::fmt::Display for VerifierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insn {}: {} ({})",
            self.insn_idx,
            self.msg,
            self.kind.errno_name()
        )
    }
}

impl std::error::Error for VerifierError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn errno_mapping() {
        assert_eq!(ErrorKind::Invalid.errno(), 22);
        assert_eq!(ErrorKind::Access.errno(), 13);
        assert_eq!(ErrorKind::TooBig.errno(), 7);
        assert_eq!(ErrorKind::NotSupported.errno(), 95);
        assert_eq!(ErrorKind::Invalid.errno_name(), "EINVAL");
        assert_eq!(ErrorKind::Access.errno_name(), "EACCES");
        assert_eq!(ErrorKind::TooBig.errno_name(), "E2BIG");
        assert_eq!(ErrorKind::NotSupported.errno_name(), "EOPNOTSUPP");
    }

    #[test]
    fn display_renders() {
        let e = VerifierError::access(
            RejectReason::NullPtrDeref,
            4,
            "invalid mem access 'map_value_or_null'",
        );
        assert!(e.to_string().contains("insn 4"));
        assert!(e.to_string().contains("EACCES"));
    }

    #[test]
    fn reason_names_are_unique_and_stable() {
        let names: BTreeSet<&str> = RejectReason::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), RejectReason::ALL.len());
        for name in names {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "non-snake_case reason name {name:?}"
            );
        }
        assert_eq!(RejectReason::UninitRegRead.name(), "uninit_reg_read");
        assert_eq!(VerifierPhase::DoCheck.name(), "do_check");
    }

    #[test]
    fn verifier_error_serde_roundtrip() {
        let e = VerifierError::access(RejectReason::StackOobAccess, 17, "invalid stack off=-520")
            .in_phase(VerifierPhase::DoCheck)
            .with_reg(3)
            .with_stack_off(-520);
        let json = serde_json::to_string(&e).unwrap();
        let back: VerifierError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.reason, RejectReason::StackOobAccess);
        assert_eq!(back.phase, VerifierPhase::DoCheck);
        assert_eq!(back.reg, Some(3));
        assert_eq!(back.stack_off, Some(-520));

        // The default-constructed shape (no operands) round-trips too.
        let plain = VerifierError::invalid(RejectReason::MalformedInsn, 0, "empty program");
        let back: VerifierError =
            serde_json::from_str(&serde_json::to_string(&plain).unwrap()).unwrap();
        assert_eq!(back, plain);
    }
}
