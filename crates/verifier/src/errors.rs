//! Verifier rejection diagnostics.

use serde::{Deserialize, Serialize};

/// Category of a verifier rejection, mapped to the errno the `bpf(2)`
/// syscall would return — the acceptance-rate experiment (§6.3) inspects
/// these, with `EACCES` and `EINVAL` dominating for random generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Malformed program or instruction (`EINVAL`).
    Invalid,
    /// A safety property was violated (`EACCES`).
    Access,
    /// Resource limits exceeded (`E2BIG`).
    TooBig,
    /// Feature not available in this kernel version (`EOPNOTSUPP`).
    NotSupported,
}

impl ErrorKind {
    /// The errno value the syscall layer surfaces.
    pub fn errno(self) -> i32 {
        match self {
            ErrorKind::Invalid => 22,
            ErrorKind::Access => 13,
            ErrorKind::TooBig => 7,
            ErrorKind::NotSupported => 95,
        }
    }

    /// The errno's symbolic name.
    pub fn errno_name(self) -> &'static str {
        match self {
            ErrorKind::Invalid => "EINVAL",
            ErrorKind::Access => "EACCES",
            ErrorKind::TooBig => "E2BIG",
            ErrorKind::NotSupported => "EOPNOTSUPP",
        }
    }
}

/// One verifier rejection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifierError {
    /// Rejection category.
    pub kind: ErrorKind,
    /// Instruction index the rejection fired at.
    pub insn_idx: usize,
    /// Kernel-log style message.
    pub msg: String,
}

impl VerifierError {
    /// Creates an error.
    pub fn new(kind: ErrorKind, insn_idx: usize, msg: impl Into<String>) -> VerifierError {
        VerifierError {
            kind,
            insn_idx,
            msg: msg.into(),
        }
    }

    /// `EINVAL`-class error.
    pub fn invalid(insn_idx: usize, msg: impl Into<String>) -> VerifierError {
        VerifierError::new(ErrorKind::Invalid, insn_idx, msg)
    }

    /// `EACCES`-class error.
    pub fn access(insn_idx: usize, msg: impl Into<String>) -> VerifierError {
        VerifierError::new(ErrorKind::Access, insn_idx, msg)
    }
}

impl std::fmt::Display for VerifierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insn {}: {} ({})",
            self.insn_idx,
            self.msg,
            self.kind.errno_name()
        )
    }
}

impl std::error::Error for VerifierError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_mapping() {
        assert_eq!(ErrorKind::Invalid.errno(), 22);
        assert_eq!(ErrorKind::Access.errno(), 13);
        assert_eq!(ErrorKind::Invalid.errno_name(), "EINVAL");
        assert_eq!(ErrorKind::Access.errno_name(), "EACCES");
    }

    #[test]
    fn display_renders() {
        let e = VerifierError::access(4, "invalid mem access 'map_value_or_null'");
        assert!(e.to_string().contains("insn 4"));
        assert!(e.to_string().contains("EACCES"));
    }
}
