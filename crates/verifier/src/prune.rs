//! State pruning (`states_equal` / `regsafe` / `stacksafe`).
//!
//! When a path reaches a prune point in a state no more permissive than
//! one already verified from that point, exploration stops. "No more
//! permissive" means: every scalar's range is inside the old range, every
//! pointer matches exactly, every stack byte is at least as initialized,
//! and packet ranges are at least as large.

use crate::state::{FuncState, StackByte, VerifierState};
use crate::types::{RegState, RegType};

/// Whether `cur` is subsumed by the already-verified `old`.
pub fn states_equal(old: &VerifierState, cur: &VerifierState) -> bool {
    if old.frames.len() != cur.frames.len() {
        return false;
    }
    if old.acquired_refs.len() != cur.acquired_refs.len() {
        return false;
    }
    for (fo, fc) in old.frames.iter().zip(&cur.frames) {
        // Copy-on-write fast path: a frame shared between both states
        // is the *same* frame, and a frame always subsumes itself.
        if std::rc::Rc::ptr_eq(fo, fc) {
            continue;
        }
        if fo.callsite != fc.callsite || fo.subprog_start != fc.subprog_start {
            return false;
        }
        if !funcsafe(fo, fc) {
            return false;
        }
    }
    true
}

fn funcsafe(old: &FuncState, cur: &FuncState) -> bool {
    for (ro, rc) in old.regs.iter().zip(&cur.regs) {
        if !regsafe(ro, rc) {
            return false;
        }
    }
    // Shared stacks are identical; a stack subsumes itself.
    if std::rc::Rc::ptr_eq(&old.stack, &cur.stack) {
        return true;
    }
    for (so, sc) in old.stack.iter().zip(cur.stack.iter()) {
        for (bo, bc) in so.bytes.iter().zip(&sc.bytes) {
            let ok = match bo {
                StackByte::Invalid => true,
                StackByte::Misc => !matches!(bc, StackByte::Invalid),
                StackByte::Zero => matches!(bc, StackByte::Zero),
                StackByte::Spill => matches!(bc, StackByte::Spill),
            };
            if !ok {
                return false;
            }
        }
        if so.is_full_spill() {
            if !sc.is_full_spill() {
                return false;
            }
            if !regsafe(&so.spilled, &sc.spilled) {
                return false;
            }
        }
    }
    true
}

/// Whether register state `cur` is within what `old` was verified for.
pub fn regsafe(old: &RegState, cur: &RegState) -> bool {
    match old.typ {
        // The old path made no assumption about this register.
        RegType::NotInit => true,
        RegType::Scalar => {
            if cur.typ != RegType::Scalar {
                return false;
            }
            range_within(old, cur) && cur.var_off.is_subset_of(old.var_off)
        }
        _ => {
            // Pointers must match precisely (modulo ids, which are
            // path-local correlation tags).
            if std::mem::discriminant(&old.typ) != std::mem::discriminant(&cur.typ) {
                return false;
            }
            if old.typ != cur.typ {
                // Differing payloads (map id, btf id, mem size).
                return false;
            }
            if old.off != cur.off || old.var_off != cur.var_off {
                return false;
            }
            if old.maybe_null != cur.maybe_null {
                return false;
            }
            if !range_within(old, cur) {
                return false;
            }
            // The old path was verified assuming `old.pkt_range` bytes
            // are accessible; cur must guarantee at least as much.
            if cur.pkt_range < old.pkt_range {
                return false;
            }
            if (old.ref_obj_id == 0) != (cur.ref_obj_id == 0) {
                return false;
            }
            true
        }
    }
}

/// `range_within`: cur's ranges fit inside old's.
fn range_within(old: &RegState, cur: &RegState) -> bool {
    old.smin <= cur.smin
        && old.smax >= cur.smax
        && old.umin <= cur.umin
        && old.umax >= cur.umax
        && old.s32_min <= cur.s32_min
        && old.s32_max >= cur.s32_max
        && old.u32_min <= cur.u32_min
        && old.u32_max >= cur.u32_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tnum::Tnum;

    #[test]
    fn notinit_old_subsumes_everything() {
        let old = RegState::not_init();
        assert!(regsafe(&old, &RegState::known_scalar(5)));
        assert!(regsafe(&old, &RegState::pointer(RegType::PtrToCtx)));
    }

    #[test]
    fn scalar_range_subsumption() {
        let mut old = RegState::unknown_scalar();
        old.umin = 0;
        old.umax = 100;
        old.normalize();
        let mut cur = RegState::unknown_scalar();
        cur.umin = 10;
        cur.umax = 50;
        cur.normalize();
        assert!(regsafe(&old, &cur));
        assert!(!regsafe(&cur, &old), "wider cur is not subsumed");
    }

    #[test]
    fn scalar_tnum_subsumption() {
        let mut old = RegState::unknown_scalar();
        old.var_off = Tnum::new(0, !1); // even numbers
        let mut cur = RegState::unknown_scalar();
        cur.var_off = Tnum::const_val(4);
        cur.set_known(4);
        assert!(regsafe(&old, &cur));
        let mut odd = RegState::unknown_scalar();
        odd.set_known(5);
        assert!(!regsafe(&old, &odd));
    }

    #[test]
    fn pointer_exact_match_required() {
        let a = RegState::pointer(RegType::PtrToMapValue { map_id: 0 });
        let mut b = a;
        assert!(regsafe(&a, &b));
        b.off = 8;
        assert!(!regsafe(&a, &b));
        let c = RegState::pointer(RegType::PtrToMapValue { map_id: 1 });
        assert!(!regsafe(&a, &c), "different map");
        let mut d = a;
        d.maybe_null = true;
        assert!(!regsafe(&a, &d));
    }

    #[test]
    fn packet_range_direction() {
        let mut old = RegState::pointer(RegType::PtrToPacket);
        old.pkt_range = 8;
        let mut cur = old;
        cur.pkt_range = 16;
        assert!(regsafe(&old, &cur), "bigger verified range is safe");
        cur.pkt_range = 4;
        assert!(!regsafe(&old, &cur), "smaller range is not");
    }

    #[test]
    fn whole_state_stack_subsumption() {
        let old = VerifierState::entry();
        let mut cur = VerifierState::entry();
        assert!(states_equal(&old, &cur));
        // cur has extra initialization — still subsumed.
        cur.cur_mut().stack_mut()[0].bytes = [StackByte::Misc; 8];
        assert!(states_equal(&old, &cur));
        // old requires init that cur lacks — not subsumed.
        let mut old2 = VerifierState::entry();
        old2.cur_mut().stack_mut()[0].bytes = [StackByte::Misc; 8];
        let cur2 = VerifierState::entry();
        assert!(!states_equal(&old2, &cur2));
    }

    #[test]
    fn ref_count_mismatch_blocks_pruning() {
        let old = VerifierState::entry();
        let mut cur = VerifierState::entry();
        let mut next = 0;
        cur.acquire_ref(&mut next, 1);
        assert!(!states_equal(&old, &cur));
    }
}
