//! Structural state fingerprints for the explored-state fast path.
//!
//! [`StateShape`] projects a [`VerifierState`] onto the *discrete* facts
//! that [`states_equal`](crate::prune::states_equal) requires to hold
//! exactly: frame count, callsites, per-register type discriminants, and
//! per-slot stack-byte shape. The projection is a **pure filter**: if
//! [`StateShape::may_subsume`] returns `false`, `states_equal(old, cur)`
//! is provably `false`, so skipping the full comparison can never change
//! a prune decision (the property test in `tests/prop_prune.rs` pins
//! this). When it returns `true` the full comparison still runs — the
//! fingerprint only prunes impossible candidates.
//!
//! The wildcard masks encode the asymmetry of subsumption:
//!
//! - an old `NOT_INIT` register subsumes *any* current register
//!   (`regsafe` returns `true` unconditionally), so its nibble is
//!   masked out;
//! - an old `MISC`/mixed stack slot only requires the current bytes to
//!   be initialized, not equal, so its slot is masked out;
//! - an old all-`ZERO` or full-spill slot demands the same shape from
//!   the current slot, so those compare exactly.

use std::rc::Rc;

use crate::state::{FuncState, StackByte, VerifierState};
use crate::types::{RegState, RegType};

/// Nibble-spread helper: maps every nonzero 4-bit lane of `tags` to
/// `0xF` and every zero lane to `0x0`.
fn nibble_mask(tags: u64) -> u64 {
    let mut m = tags | (tags >> 1);
    m |= m >> 2;
    m &= 0x1111_1111_1111_1111;
    m * 0xF
}

/// 2-bit-spread helper: maps every nonzero 2-bit lane of `tags` to
/// `0b11` and every zero lane to `0b00`.
fn pair_mask(tags: u64) -> u64 {
    let mut m = tags | (tags >> 1);
    m &= 0x5555_5555_5555_5555;
    m * 0b11
}

/// Registers summarized per frame (R0..R10); the shape arrays leave
/// room for 16 so four-bit lane packing never overflows.
const SHAPE_REGS: usize = 16;

/// Monotone 16-bit magnitude class: the bit width of `v` in the high
/// byte and the top 8 significant bits of `v` in the low byte — a tiny
/// unsigned float. `v1 <= v2` implies `magnitude_class(v1) <=
/// magnitude_class(v2)`, which is what makes the bounds-class
/// comparisons below *necessary* conditions of `range_within`, while
/// the mantissa still separates nearby values (consecutive integers
/// below 512 always differ).
fn magnitude_class(v: u64) -> u16 {
    let width = 64 - v.leading_zeros();
    let mantissa = if width > 8 { v >> (width - 8) } else { v };
    ((width as u16) << 8) | mantissa as u16
}

/// The discrete shape of one call frame.
///
/// Besides the type tags, each register carries three monotone *bounds
/// classes* and the low byte of `umin`. `regsafe` demands
/// `range_within(old, cur)` for scalars **and** pointers, and
/// `old.umin <= cur.umin && old.umax >= cur.umax` implies
///
/// - `class(old.umax) >= class(cur.umax)`,
/// - `class(old.umin) <= class(cur.umin)`,
/// - `class(old.umax - old.umin) >= class(cur.umax - cur.umin)`, and
/// - if `old` is a known constant (`umin == umax`), `cur` must be the
///   *same* constant, so the low bytes of `umin` must be equal.
///
/// The last rule is the one with teeth on the loop-detection path: a
/// counting loop revisits its prune point with the same type shape but
/// a different induction value, and the low byte separates consecutive
/// values 255 times out of 256.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameShape {
    /// One 4-bit [`RegType::tag`] per register (R0..R10), low nibble =
    /// R0.
    reg_tags: u64,
    /// `0xF` for every register whose tag must match exactly for
    /// subsumption, `0x0` for wildcards (old `NOT_INIT`).
    reg_mask: u64,
    /// Per-register magnitude class of the unsigned range width
    /// (`umax - umin`); 0 means a known constant.
    width_class: [u16; SHAPE_REGS],
    /// Per-register magnitude class of `umax`.
    umax_class: [u16; SHAPE_REGS],
    /// Per-register magnitude class of `umin`.
    umin_class: [u16; SHAPE_REGS],
    /// Per-register low byte of `umin`; compared exactly when the old
    /// register is a known constant.
    umin_low: [u8; SHAPE_REGS],
    /// Two bits per stack slot (64 slots): `01` = all bytes `ZERO`,
    /// `10` = full spill, `00` = anything else.
    stack_tags: [u64; 2],
    /// `0b11` for slots whose tag must match exactly, `0b00` for
    /// wildcard slots (old `INVALID`/`MISC`/mixed).
    stack_mask: [u64; 2],
}

impl FrameShape {
    fn of(frame: &FuncState) -> FrameShape {
        let mut reg_tags = 0u64;
        let mut width_class = [0u16; SHAPE_REGS];
        let mut umax_class = [0u16; SHAPE_REGS];
        let mut umin_class = [0u16; SHAPE_REGS];
        let mut umin_low = [0u8; SHAPE_REGS];
        for (i, r) in frame.regs.iter().enumerate() {
            reg_tags |= u64::from(r.typ.tag()) << (i * 4);
            width_class[i] = magnitude_class(r.umax.wrapping_sub(r.umin));
            umax_class[i] = magnitude_class(r.umax);
            umin_class[i] = magnitude_class(r.umin);
            umin_low[i] = r.umin as u8;
        }
        let mut stack_tags = [0u64; 2];
        for (i, slot) in frame.stack.iter().enumerate() {
            let tag: u64 = if slot.bytes.iter().all(|&b| b == StackByte::Zero) {
                0b01
            } else if slot.is_full_spill() {
                0b10
            } else {
                0b00
            };
            stack_tags[i / 32] |= tag << ((i % 32) * 2);
        }
        FrameShape {
            reg_tags,
            reg_mask: nibble_mask(reg_tags),
            width_class,
            umax_class,
            umin_class,
            umin_low,
            stack_tags,
            stack_mask: [pair_mask(stack_tags[0]), pair_mask(stack_tags[1])],
        }
    }

    /// Whether a state with this (old) frame shape can possibly subsume
    /// a state with frame shape `cur`.
    fn may_subsume(&self, cur: &FrameShape) -> bool {
        if (self.reg_tags ^ cur.reg_tags) & self.reg_mask != 0 {
            return false;
        }
        if (self.stack_tags[0] ^ cur.stack_tags[0]) & self.stack_mask[0] != 0
            || (self.stack_tags[1] ^ cur.stack_tags[1]) & self.stack_mask[1] != 0
        {
            return false;
        }
        for i in 0..SHAPE_REGS {
            if (self.reg_mask >> (i * 4)) & 0xF == 0 {
                // Old NOT_INIT: no assumption, nothing to filter on.
                continue;
            }
            // Necessary consequences of range_within(old, cur); see the
            // struct doc for the derivations.
            if self.width_class[i] < cur.width_class[i]
                || self.umax_class[i] < cur.umax_class[i]
                || self.umin_class[i] > cur.umin_class[i]
            {
                return false;
            }
            if self.width_class[i] == 0 && self.umin_low[i] != cur.umin_low[i] {
                return false;
            }
        }
        true
    }
}

/// The structural fingerprint of a [`VerifierState`], hashed once when
/// the state is pushed into the explored index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateShape {
    /// Hash of the exact-equality preconditions of `states_equal`
    /// (frame count, acquired-ref count, per-frame callsite and
    /// subprogram start). States in different buckets can never be
    /// equal, so this keys the per-prune-point index.
    bucket: u64,
    frames: Vec<FrameShape>,
}

/// SplitMix64 finalizer — the bucket hash's mixing function.
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StateShape {
    /// Projects `state` onto its structural fingerprint.
    pub fn of(state: &VerifierState) -> StateShape {
        let mut bucket = mix(state.frames.len() as u64, state.acquired_refs.len() as u64);
        for f in &state.frames {
            bucket = mix(bucket, f.callsite as u64);
            bucket = mix(bucket, f.subprog_start as u64);
        }
        StateShape {
            bucket,
            frames: state.frames.iter().map(|f| FrameShape::of(f)).collect(),
        }
    }

    /// The index-bucket key.
    pub fn bucket(&self) -> u64 {
        self.bucket
    }

    /// Whether a stored (old) state with shape `self` can possibly
    /// subsume a current state with shape `cur`. `false` guarantees
    /// `states_equal(old, cur) == false`.
    pub fn may_subsume(&self, cur: &StateShape) -> bool {
        self.frames.len() == cur.frames.len()
            && self
                .frames
                .iter()
                .zip(&cur.frames)
                .all(|(o, c)| o.may_subsume(c))
    }
}

/// A deterministic "how much does this state admit" score used by the
/// eviction policy: higher scores subsume more future states. Only the
/// ordering matters, and only its determinism is load-bearing.
pub fn permissiveness(state: &VerifierState) -> u64 {
    let mut score = 0u64;
    for f in &state.frames {
        for r in &f.regs {
            score += reg_permissiveness(r);
        }
        for s in f.stack.iter() {
            for b in &s.bytes {
                score += match b {
                    StackByte::Invalid => 4,
                    StackByte::Misc => 2,
                    StackByte::Zero | StackByte::Spill => 0,
                };
            }
            if s.is_full_spill() {
                score += reg_permissiveness(&s.spilled) >> 3;
            }
        }
    }
    score
}

fn reg_permissiveness(r: &RegState) -> u64 {
    match r.typ {
        // NOT_INIT subsumes everything — the most permissive a
        // register can be.
        RegType::NotInit => 512,
        // Scalars: wider bounds and more unknown tnum bits admit more
        // concrete values.
        RegType::Scalar => {
            let width = 64 - (r.umax.wrapping_sub(r.umin)).leading_zeros() as u64;
            64 + width * 2 + u64::from(r.var_off.mask.count_ones())
        }
        // Pointers require near-exact matches; a nullable pointer is
        // marginally laxer than a proven non-null one.
        _ => u64::from(r.maybe_null),
    }
}

/// One state stored at a prune point.
#[derive(Debug, Clone)]
pub struct ExploredEntry {
    /// The stored state, shared with the path-trace node created at the
    /// same visit (so loop-scan and explored-scan can recognize the
    /// same candidate by pointer identity).
    pub state: Rc<VerifierState>,
    /// Its fingerprint, computed once at push time.
    pub shape: StateShape,
    /// Cached [`permissiveness`] score for eviction ordering.
    pub permissiveness: u64,
}

/// The per-prune-point explored-state index: insertion-ordered entries
/// plus a fingerprint-bucket map so the fast path only scans candidates
/// whose discrete shape can possibly subsume the current state.
#[derive(Debug, Clone, Default)]
pub struct ExploredPoint {
    entries: Vec<ExploredEntry>,
    buckets: std::collections::HashMap<u64, Vec<usize>>,
}

impl ExploredPoint {
    /// Number of stored states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the point has no stored states.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All stored entries, oldest first.
    pub fn entries(&self) -> &[ExploredEntry] {
        &self.entries
    }

    /// Indices of the entries whose bucket key matches `bucket`.
    pub fn bucket_candidates(&self, bucket: u64) -> &[usize] {
        self.buckets.get(&bucket).map_or(&[], |v| v.as_slice())
    }

    /// Stores `entry`, evicting the most specific resident state when
    /// the point is at `cap`. The incoming state is itself dropped when
    /// it is the most specific of the lot — the states most likely to
    /// subsume future paths are the ones kept. Returns `true` when an
    /// eviction (either direction) happened.
    ///
    /// Ties break on the lowest index (oldest entry), which keeps the
    /// policy deterministic.
    pub fn insert(&mut self, entry: ExploredEntry, cap: usize) -> bool {
        if self.entries.len() < cap {
            let idx = self.entries.len();
            self.buckets
                .entry(entry.shape.bucket())
                .or_default()
                .push(idx);
            self.entries.push(entry);
            return false;
        }
        let (idx, most_specific) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.permissiveness)
            .expect("cap > 0");
        if entry.permissiveness <= most_specific.permissiveness {
            // The incoming state admits no more than anything resident:
            // drop it instead.
            return true;
        }
        let old_bucket = self.entries[idx].shape.bucket();
        if let Some(v) = self.buckets.get_mut(&old_bucket) {
            v.retain(|&i| i != idx);
            if v.is_empty() {
                self.buckets.remove(&old_bucket);
            }
        }
        // Entry indices are stable (in-place replacement), so the other
        // bucket vectors stay valid.
        self.buckets
            .entry(entry.shape.bucket())
            .or_default()
            .push(idx);
        self.entries[idx] = entry;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StackSlot;

    fn entry_state() -> VerifierState {
        VerifierState::entry()
    }

    fn ranged_scalar(max: u64) -> RegState {
        let mut r = RegState::unknown_scalar();
        r.umax = max;
        r.smax = max as i64;
        r.var_off = crate::tnum::Tnum::range(0, max);
        r.update_reg_bounds();
        r
    }

    fn entry(state: VerifierState) -> ExploredEntry {
        let shape = StateShape::of(&state);
        let permissiveness = permissiveness(&state);
        ExploredEntry {
            state: Rc::new(state),
            shape,
            permissiveness,
        }
    }

    #[test]
    fn identical_states_may_subsume() {
        let a = StateShape::of(&entry_state());
        let b = StateShape::of(&entry_state());
        assert_eq!(a.bucket(), b.bucket());
        assert!(a.may_subsume(&b));
        assert!(b.may_subsume(&a));
    }

    #[test]
    fn not_init_is_a_wildcard() {
        // Old R1 = NOT_INIT must admit a cur with R1 = scalar.
        let mut old = entry_state();
        old.cur_mut().regs[1] = RegState::not_init();
        let cur = entry_state();
        assert!(StateShape::of(&old).may_subsume(&StateShape::of(&cur)));
        // ...but the reverse (old ctx ptr vs cur NOT_INIT) cannot.
        assert!(!StateShape::of(&cur).may_subsume(&StateShape::of(&old)));
    }

    #[test]
    fn scalar_vs_pointer_never_subsumes() {
        let mut old = entry_state();
        old.cur_mut().regs[1] = RegState::unknown_scalar();
        let cur = entry_state(); // R1 = ctx pointer
        assert!(!StateShape::of(&old).may_subsume(&StateShape::of(&cur)));
    }

    #[test]
    fn zero_slot_demands_zero_slot() {
        let mut old = entry_state();
        old.cur_mut().stack_mut()[0] = StackSlot {
            bytes: [StackByte::Zero; 8],
            spilled: RegState::not_init(),
        };
        let cur = entry_state(); // slot 0 untouched (INVALID)
        assert!(!StateShape::of(&old).may_subsume(&StateShape::of(&cur)));
        // An old INVALID slot is a wildcard: admits the zeroed slot.
        assert!(StateShape::of(&cur).may_subsume(&StateShape::of(&old)));
    }

    #[test]
    fn frame_structure_splits_buckets() {
        let one = entry_state();
        let mut two = entry_state();
        two.frames.push(Rc::new(FuncState::new(3, 7)));
        let mut two_other_callsite = entry_state();
        two_other_callsite
            .frames
            .push(Rc::new(FuncState::new(3, 9)));
        assert_ne!(StateShape::of(&one).bucket(), StateShape::of(&two).bucket());
        assert_ne!(
            StateShape::of(&two).bucket(),
            StateShape::of(&two_other_callsite).bucket()
        );
    }

    #[test]
    fn eviction_keeps_the_most_permissive() {
        let mut point = ExploredPoint::default();
        // A very specific state: every reg a known constant.
        let mut specific = entry_state();
        for i in 0..=5 {
            specific.cur_mut().regs[i] = RegState::known_scalar(0);
        }
        // A permissive state: everything unknown.
        let mut permissive = entry_state();
        for i in 0..=5 {
            permissive.cur_mut().regs[i] = RegState::unknown_scalar();
        }
        assert!(!point.insert(entry(specific.clone()), 2));
        assert!(!point.insert(entry(permissive.clone()), 2));
        // A third, mid-permissiveness state evicts the specific one.
        let mut mid = entry_state();
        for i in 0..=5 {
            mid.cur_mut().regs[i] = ranged_scalar(1 << 20);
        }
        assert!(point.insert(entry(mid), 2));
        assert_eq!(point.len(), 2);
        let scores: Vec<u64> = point.entries().iter().map(|e| e.permissiveness).collect();
        assert!(scores.iter().all(|&s| s > permissiveness(&specific)));
        // A fully-specific incomer is dropped (still counts as an
        // eviction) and the residents survive.
        let mut very_specific = entry_state();
        for i in 0..=9 {
            very_specific.cur_mut().regs[i] = RegState::known_scalar(3);
        }
        assert!(point.insert(entry(very_specific), 2));
        assert_eq!(
            point
                .entries()
                .iter()
                .map(|e| e.permissiveness)
                .collect::<Vec<_>>(),
            scores
        );
    }

    #[test]
    fn bucket_candidates_track_evictions() {
        let mut point = ExploredPoint::default();
        let e = entry(entry_state());
        let bucket = e.shape.bucket();
        point.insert(e, 4);
        assert_eq!(point.bucket_candidates(bucket), &[0]);
        assert!(point.bucket_candidates(bucket ^ 1).is_empty());
    }
}
