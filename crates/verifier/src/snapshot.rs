//! Per-instruction abstract-state snapshots for the differential oracle.
//!
//! When [`crate::VerifierOpts::snapshots`] is set, the main verification
//! walk records, for every visit of every main-frame instruction, the
//! abstract register file (`R0`..`R10`) it proved *before* that
//! instruction executes. `bvf-diff` later joins this stream with a
//! concrete interpreter trace and asserts concretization membership:
//! every concrete register value observed at instruction `i` must lie
//! inside at least one abstract state recorded for `i` (the verifier is
//! path-sensitive, so the proved invariant at `i` is the *union* of the
//! per-path states).
//!
//! Snapshots are capped per instruction ([`MAX_STATES_PER_INSN`]): once
//! an instruction has been visited more often than the cap, it is marked
//! [`InsnStates::truncated`] and the differential check must skip it —
//! a missing path state may not be reported as a divergence.

use crate::state::VerifierState;
use crate::types::RegState;

/// Registers captured per snapshot: `R0`..`R10` (the auxiliary `AX`
/// register is a rewrite-pass artifact and never carries program state
/// at original-instruction boundaries).
pub const SNAPSHOT_REGS: usize = 11;

/// Maximum abstract states remembered per instruction. Beyond this the
/// instruction is flagged truncated and excluded from membership checks
/// (soundness of the *oracle*: never report a divergence against an
/// incomplete path union).
pub const MAX_STATES_PER_INSN: usize = 16;

/// The abstract register file the verifier proved at one path visit of
/// one instruction.
#[derive(Debug, Clone)]
pub struct RegSnapshot {
    /// Abstract state of `R0`..`R10` immediately before the instruction.
    pub regs: [RegState; SNAPSHOT_REGS],
}

/// All abstract states recorded at one instruction index.
#[derive(Debug, Clone, Default)]
pub struct InsnStates {
    /// One entry per explored path visit, in visit order (capped).
    pub states: Vec<RegSnapshot>,
    /// The cap was hit: the union here is incomplete and the instruction
    /// must be skipped by membership checks.
    pub truncated: bool,
}

/// The per-instruction abstract-state stream of one verification run,
/// indexed by original-program instruction slot.
#[derive(Debug, Clone, Default)]
pub struct SnapshotStream {
    per_insn: Vec<InsnStates>,
}

impl SnapshotStream {
    /// An enabled stream covering `insn_count` instruction slots.
    pub fn new(insn_count: usize) -> SnapshotStream {
        SnapshotStream {
            per_insn: vec![InsnStates::default(); insn_count],
        }
    }

    /// Whether nothing was recorded (snapshots disabled or the program
    /// was rejected before the walk).
    pub fn is_empty(&self) -> bool {
        self.per_insn.iter().all(|s| s.states.is_empty())
    }

    /// Records the main frame of `state` as one visit of `pc`. The
    /// caller guarantees `state.depth() == 0`.
    pub fn record(&mut self, pc: usize, state: &VerifierState) {
        let frame = state.cur();
        let mut regs = [RegState::not_init(); SNAPSHOT_REGS];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = frame.regs[i];
        }
        self.push_raw(pc, RegSnapshot { regs });
    }

    /// Appends a pre-built snapshot as one visit of `pc`, honoring the
    /// per-instruction cap. Out-of-range `pc`s are ignored. Used by
    /// `bvf-diff` tests to build synthetic streams.
    pub fn push_raw(&mut self, pc: usize, snap: RegSnapshot) {
        let Some(slot) = self.per_insn.get_mut(pc) else {
            return;
        };
        if slot.states.len() >= MAX_STATES_PER_INSN {
            slot.truncated = true;
            return;
        }
        slot.states.push(snap);
    }

    /// Flags the slot at `pc` as truncated (incomplete path union),
    /// excluding it from membership checks.
    pub fn mark_truncated(&mut self, pc: usize) {
        if let Some(slot) = self.per_insn.get_mut(pc) {
            slot.truncated = true;
        }
    }

    /// The states recorded at instruction `pc`, if the slot exists.
    pub fn at(&self, pc: usize) -> Option<&InsnStates> {
        self.per_insn.get(pc)
    }

    /// Number of instruction slots with at least one recorded state.
    pub fn recorded_insns(&self) -> usize {
        self.per_insn
            .iter()
            .filter(|s| !s.states.is_empty())
            .count()
    }

    /// Total states recorded across all instructions.
    pub fn total_states(&self) -> usize {
        self.per_insn.iter().map(|s| s.states.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_caps_and_flags_truncation() {
        let mut s = SnapshotStream::new(2);
        let st = VerifierState::entry();
        for _ in 0..MAX_STATES_PER_INSN {
            s.record(0, &st);
        }
        assert_eq!(s.at(0).unwrap().states.len(), MAX_STATES_PER_INSN);
        assert!(!s.at(0).unwrap().truncated);
        s.record(0, &st);
        assert_eq!(s.at(0).unwrap().states.len(), MAX_STATES_PER_INSN);
        assert!(s.at(0).unwrap().truncated);
        assert_eq!(s.recorded_insns(), 1);
        assert_eq!(s.total_states(), MAX_STATES_PER_INSN);
    }

    #[test]
    fn out_of_range_record_is_ignored() {
        let mut s = SnapshotStream::new(1);
        let st = VerifierState::entry();
        s.record(5, &st);
        assert!(s.is_empty());
        assert!(s.at(5).is_none());
    }
}
