//! Rewrite passes (`resolve_pseudo_ldimm64` / `bpf_misc_fixup`).
//!
//! After verification succeeds, pseudo instructions are rewritten to their
//! runtime form: map fds become `struct bpf_map` addresses, direct value
//! pseudo loads become value-area addresses, and BTF-id loads become
//! object addresses (which may legitimately be zero — the untracked-null
//! property bug #1 exploits). BVF's sanitation instrumentation runs *at
//! the end of this phase* (in the `bvf` crate) over the rewritten program
//! plus the per-instruction metadata collected here.

use bvf_isa::opcode::pseudo;
use bvf_kernel_sim::map::MapStorage;

use crate::cov::Cat;
use crate::env::Verifier;
use crate::errors::{RejectReason, VerifierError};

impl<'a> Verifier<'a> {
    /// Applies the rewrite passes to the working program copy.
    pub(crate) fn do_fixups(&mut self) -> Result<(), VerifierError> {
        // Materialize the path-merged alu_limit assertions.
        for (pc, merged) in std::mem::take(&mut self.alu_limit_state) {
            self.insn_meta[pc].alu_limit = merged;
        }
        let n = self.prog.insn_count();
        let mut pc = 0;
        while pc < n {
            if !self.insn_starts[pc] {
                pc += 1;
                continue;
            }
            let insn = self.prog.insns()[pc];
            let raw = insn;
            if raw.is_ld_imm64() {
                let lo = self.prog.insns()[pc].imm as u32 as u64;
                let hi = self.prog.insns()[pc + 1].imm as u32 as u64;
                let imm64 = lo | (hi << 32);
                let new_imm64 = match raw.src {
                    pseudo::NONE => None,
                    // Dead code can carry fds `do_check` never saw; the
                    // kernel resolves pseudo loads before verification and
                    // rejects bad fds regardless of reachability — match
                    // that by rejecting here.
                    pseudo::MAP_FD => {
                        self.cov.hit(Cat::Fixup, 1, 0);
                        let map = self.kernel.maps.get(imm64 as u32).ok_or_else(|| {
                            VerifierError::invalid(
                                RejectReason::BadMapFd,
                                pc,
                                format!("fd {} is not a map", imm64 as u32),
                            )
                        })?;
                        Some(map.struct_addr)
                    }
                    pseudo::MAP_VALUE => {
                        self.cov.hit(Cat::Fixup, 2, 0);
                        let map = self.kernel.maps.get(imm64 as u32).ok_or_else(|| {
                            VerifierError::invalid(
                                RejectReason::BadMapFd,
                                pc,
                                format!("fd {} is not a map", imm64 as u32),
                            )
                        })?;
                        let off = imm64 >> 32;
                        match &map.storage {
                            MapStorage::Array { values_addr } => Some(values_addr + off),
                            _ => {
                                return Err(VerifierError::invalid(
                                    RejectReason::BadDirectValue,
                                    pc,
                                    "direct value access on non-array map",
                                ))
                            }
                        }
                    }
                    pseudo::BTF_ID => {
                        self.cov.hit(Cat::Fixup, 3, 0);
                        // May be zero: the object is null on this boot.
                        Some(self.kernel.btf_object(imm64 as u32))
                    }
                    _ => None,
                };
                if let Some(v) = new_imm64 {
                    let insns = self.prog.insns_mut();
                    insns[pc].src = pseudo::NONE;
                    insns[pc].imm = v as u32 as i32;
                    insns[pc + 1].imm = (v >> 32) as u32 as i32;
                }
                pc += 2;
                continue;
            }
            pc += 1;
        }
        self.cov.hit(Cat::Fixup, 0, 0);
        Ok(())
    }
}
