//! Register state: types, bounds, and the bounds-maintenance algebra.
//!
//! [`RegState`] mirrors `struct bpf_reg_state`: a type, a fixed offset, a
//! tnum for the variable part, and four-and-four signed/unsigned 64/32-bit
//! range bounds, kept mutually consistent by the same
//! `__update_reg_bounds` / `__reg_deduce_bounds` / `__reg_bound_offset`
//! dance the kernel performs.

use serde::{Deserialize, Serialize};

use bvf_kernel_sim::btf::BtfTypeId;

use crate::tnum::Tnum;

/// The type of a value held in a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegType {
    /// Never written.
    NotInit,
    /// A scalar value (bounds in the register state).
    Scalar,
    /// Pointer to the program context.
    PtrToCtx,
    /// Pointer to a `struct bpf_map` (from `LD_IMM64 MAP_FD`).
    ConstPtrToMap {
        /// The map id.
        map_id: u32,
    },
    /// Pointer into a map value.
    PtrToMapValue {
        /// The map id.
        map_id: u32,
    },
    /// Pointer into the eBPF stack (based on `R10`).
    PtrToStack,
    /// Pointer to packet data.
    PtrToPacket,
    /// Pointer to the end of packet data.
    PtrToPacketEnd,
    /// Trusted pointer to a BTF-identified kernel object.
    PtrToBtfId {
        /// The BTF type id.
        btf_id: BtfTypeId,
    },
    /// Pointer to a block of memory of known size (ringbuf records).
    PtrToMem {
        /// Region size in bytes.
        size: u32,
        /// Whether the region came from an acquiring helper.
        alloc: bool,
    },
}

impl RegType {
    /// Whether the type is any flavor of pointer.
    pub fn is_pointer(self) -> bool {
        !matches!(self, RegType::NotInit | RegType::Scalar)
    }

    /// Stable small integer identifying the type (coverage keys).
    pub fn tag(self) -> u32 {
        match self {
            RegType::NotInit => 0,
            RegType::Scalar => 1,
            RegType::PtrToCtx => 2,
            RegType::ConstPtrToMap { .. } => 3,
            RegType::PtrToMapValue { .. } => 4,
            RegType::PtrToStack => 5,
            RegType::PtrToPacket => 6,
            RegType::PtrToPacketEnd => 7,
            RegType::PtrToBtfId { .. } => 8,
            RegType::PtrToMem { .. } => 9,
        }
    }

    /// Kernel-log style name of the type.
    pub fn name(self) -> &'static str {
        match self {
            RegType::NotInit => "?",
            RegType::Scalar => "scalar",
            RegType::PtrToCtx => "ctx",
            RegType::ConstPtrToMap { .. } => "map_ptr",
            RegType::PtrToMapValue { .. } => "map_value",
            RegType::PtrToStack => "fp",
            RegType::PtrToPacket => "pkt",
            RegType::PtrToPacketEnd => "pkt_end",
            RegType::PtrToBtfId { .. } => "ptr_to_btf_id",
            RegType::PtrToMem { .. } => "mem",
        }
    }
}

/// Abstract state of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegState {
    /// Value type.
    pub typ: RegType,
    /// Fixed offset added to a pointer.
    pub off: i32,
    /// Variable part: the whole value for scalars, the variable offset
    /// for pointers.
    pub var_off: Tnum,
    /// Minimum signed 64-bit value.
    pub smin: i64,
    /// Maximum signed 64-bit value.
    pub smax: i64,
    /// Minimum unsigned 64-bit value.
    pub umin: u64,
    /// Maximum unsigned 64-bit value.
    pub umax: u64,
    /// Minimum signed 32-bit value.
    pub s32_min: i32,
    /// Maximum signed 32-bit value.
    pub s32_max: i32,
    /// Minimum unsigned 32-bit value.
    pub u32_min: u32,
    /// Maximum unsigned 32-bit value.
    pub u32_max: u32,
    /// Identity for null-branch and equal-scalar correlation.
    pub id: u32,
    /// The acquired-reference id this register holds (0 = none).
    pub ref_obj_id: u32,
    /// Whether the pointer may be null (`PTR_MAYBE_NULL`).
    pub maybe_null: bool,
    /// Verified accessible range past a packet pointer (set by
    /// comparisons against `pkt_end`).
    pub pkt_range: u16,
}

impl Default for RegState {
    fn default() -> Self {
        RegState::not_init()
    }
}

impl RegState {
    /// An uninitialized register.
    pub fn not_init() -> RegState {
        RegState {
            typ: RegType::NotInit,
            off: 0,
            var_off: Tnum::UNKNOWN,
            smin: i64::MIN,
            smax: i64::MAX,
            umin: 0,
            umax: u64::MAX,
            s32_min: i32::MIN,
            s32_max: i32::MAX,
            u32_min: 0,
            u32_max: u32::MAX,
            id: 0,
            ref_obj_id: 0,
            maybe_null: false,
            pkt_range: 0,
        }
    }

    /// A completely unknown scalar (`mark_reg_unknown`).
    pub fn unknown_scalar() -> RegState {
        RegState {
            typ: RegType::Scalar,
            ..RegState::not_init()
        }
    }

    /// A known constant scalar (`mark_reg_known`).
    pub fn known_scalar(v: u64) -> RegState {
        let mut r = RegState::unknown_scalar();
        r.set_known(v);
        r
    }

    /// A pointer of the given type with zero offset.
    pub fn pointer(typ: RegType) -> RegState {
        RegState {
            typ,
            off: 0,
            var_off: Tnum::const_val(0),
            smin: 0,
            smax: 0,
            umin: 0,
            umax: 0,
            s32_min: 0,
            s32_max: 0,
            u32_min: 0,
            u32_max: 0,
            id: 0,
            ref_obj_id: 0,
            maybe_null: false,
            pkt_range: 0,
        }
    }

    /// Sets the register to a known scalar constant.
    pub fn set_known(&mut self, v: u64) {
        self.typ = RegType::Scalar;
        self.var_off = Tnum::const_val(v);
        self.smin = v as i64;
        self.smax = v as i64;
        self.umin = v;
        self.umax = v;
        self.s32_min = v as u32 as i32;
        self.s32_max = v as u32 as i32;
        self.u32_min = v as u32;
        self.u32_max = v as u32;
        self.maybe_null = false;
        self.pkt_range = 0;
    }

    /// Whether the register is a fully known scalar.
    pub fn is_known(&self) -> bool {
        self.typ == RegType::Scalar && self.var_off.is_const()
    }

    /// The constant value of a known scalar.
    pub fn const_value(&self) -> Option<u64> {
        if self.is_known() {
            Some(self.var_off.value)
        } else {
            None
        }
    }

    /// Whether the pointer has a known constant (fixed-only) offset.
    pub fn has_const_offset(&self) -> bool {
        self.var_off.is_const()
    }

    /// Resets all range knowledge to "anything" (`__mark_reg_unbounded`).
    pub fn mark_unbounded(&mut self) {
        self.smin = i64::MIN;
        self.smax = i64::MAX;
        self.umin = 0;
        self.umax = u64::MAX;
        self.s32_min = i32::MIN;
        self.s32_max = i32::MAX;
        self.u32_min = 0;
        self.u32_max = u32::MAX;
    }

    /// Drops everything down to an unknown scalar (`mark_reg_unknown`).
    pub fn mark_unknown(&mut self) {
        *self = RegState::unknown_scalar();
    }

    // ---- bounds algebra (ports of the kernel's maintenance functions) ----

    /// `__update_reg32_bounds`: refine 32-bit bounds from `var_off`.
    pub fn update_reg32_bounds(&mut self) {
        let var32 = self.var_off.subreg();
        // New signed bounds from the tnum, when the sign bit is known.
        if (var32.mask & 0x8000_0000) == 0 {
            let nmin = var32.value as i32;
            let nmax = (var32.value | var32.mask) as i32;
            self.s32_min = self.s32_min.max(nmin);
            self.s32_max = self.s32_max.min(nmax);
        }
        self.u32_min = self.u32_min.max(var32.umin() as u32);
        self.u32_max = self.u32_max.min(var32.umax() as u32);
    }

    /// `__update_reg64_bounds`.
    pub fn update_reg64_bounds(&mut self) {
        if (self.var_off.mask & (1 << 63)) == 0 {
            let nmin = self.var_off.value as i64;
            let nmax = (self.var_off.value | self.var_off.mask) as i64;
            self.smin = self.smin.max(nmin);
            self.smax = self.smax.min(nmax);
        }
        self.umin = self.umin.max(self.var_off.umin());
        self.umax = self.umax.min(self.var_off.umax());
    }

    /// `__update_reg_bounds`.
    pub fn update_reg_bounds(&mut self) {
        self.update_reg32_bounds();
        self.update_reg64_bounds();
    }

    /// `__reg32_deduce_bounds`: cross-derive signed/unsigned 32-bit bounds.
    pub fn reg32_deduce_bounds(&mut self) {
        // If the unsigned range does not cross the sign boundary, the
        // signed and unsigned ranges describe the same values.
        if (self.u32_min as i32) <= (self.u32_max as i32) {
            self.s32_min = self.s32_min.max(self.u32_min as i32);
            self.s32_max = self.s32_max.min(self.u32_max as i32);
        }
        if self.s32_min >= 0 {
            self.u32_min = self.u32_min.max(self.s32_min as u32);
            self.u32_max = self.u32_max.min(self.s32_max as u32);
        }
    }

    /// `__reg64_deduce_bounds`.
    pub fn reg64_deduce_bounds(&mut self) {
        if (self.umin as i64) <= (self.umax as i64) {
            self.smin = self.smin.max(self.umin as i64);
            self.smax = self.smax.min(self.umax as i64);
        }
        if self.smin >= 0 {
            self.umin = self.umin.max(self.smin as u64);
            self.umax = self.umax.min(self.smax as u64);
        }
    }

    /// `__reg_deduce_bounds`.
    pub fn reg_deduce_bounds(&mut self) {
        self.reg32_deduce_bounds();
        self.reg64_deduce_bounds();
    }

    /// `__reg_bound_offset`: feed range knowledge back into `var_off`.
    pub fn reg_bound_offset(&mut self) {
        let range64 = Tnum::range(self.umin, self.umax);
        let range32 = Tnum::range(self.u32_min as u64, self.u32_max as u64);
        let var64 = self.var_off.intersect(range64);
        let var32 = self.var_off.subreg().intersect(range32);
        self.var_off = var64.with_subreg(var32);
    }

    /// Full normalization after an operation: update, deduce, bound.
    pub fn normalize(&mut self) {
        self.update_reg_bounds();
        self.reg_deduce_bounds();
        self.reg_bound_offset();
    }

    /// Whether the bounds have become contradictory (empty set) — a
    /// verifier-internal sanity violation.
    pub fn bounds_sane(&self) -> bool {
        self.smin <= self.smax
            && self.umin <= self.umax
            && self.s32_min <= self.s32_max
            && self.u32_min <= self.u32_max
    }

    /// `__reg_combine_64_into_32`: derive 32-bit bounds after a 64-bit op.
    pub fn combine_64_into_32(&mut self) {
        self.s32_min = i32::MIN;
        self.s32_max = i32::MAX;
        self.u32_min = 0;
        self.u32_max = u32::MAX;
        // If the 64-bit value fits in 32 bits, project the bounds down.
        if self.umin <= u32::MAX as u64 && self.umax <= u32::MAX as u64 {
            self.u32_min = self.umin as u32;
            self.u32_max = self.umax as u32;
        }
        if self.smin >= i32::MIN as i64 && self.smax <= i32::MAX as i64 && self.smin <= self.smax {
            self.s32_min = self.smin as i32;
            self.s32_max = self.smax as i32;
        }
        self.update_reg32_bounds();
        self.reg32_deduce_bounds();
    }

    /// `__reg_combine_32_into_64`: widen after a 32-bit op (which
    /// zero-extends the destination).
    pub fn combine_32_into_64(&mut self) {
        self.umin = self.u32_min as u64;
        self.umax = self.u32_max as u64;
        // Zero extension: the 64-bit signed view equals the unsigned one.
        self.smin = self.u32_min as i64;
        self.smax = self.u32_max as i64;
        self.var_off = self.var_off.subreg();
        self.normalize();
    }

    /// Zero-extends the register after a 32-bit ALU write
    /// (`zext_32_to_64`).
    pub fn zext_32_to_64(&mut self) {
        self.var_off = self.var_off.subreg();
        self.combine_32_into_64();
    }

    /// Renders the register in verifier-log style.
    pub fn describe(&self) -> String {
        match self.typ {
            RegType::NotInit => "not_init".to_string(),
            RegType::Scalar => {
                if let Some(v) = self.const_value() {
                    format!("{v}")
                } else {
                    format!(
                        "scalar(umin={},umax={},smin={},smax={},var={})",
                        self.umin, self.umax, self.smin, self.smax, self.var_off
                    )
                }
            }
            t => {
                let null = if self.maybe_null { "_or_null" } else { "" };
                if self.var_off.is_const() && self.var_off.value == 0 {
                    format!("{}{}(off={})", t.name(), null, self.off)
                } else {
                    format!(
                        "{}{}(off={},var={})",
                        t.name(),
                        null,
                        self.off,
                        self.var_off
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_scalar_bounds() {
        let r = RegState::known_scalar(100);
        assert!(r.is_known());
        assert_eq!(r.const_value(), Some(100));
        assert_eq!((r.smin, r.smax, r.umin, r.umax), (100, 100, 100, 100));
        assert_eq!((r.u32_min, r.u32_max), (100, 100));
        assert!(r.bounds_sane());
    }

    #[test]
    fn known_negative_scalar() {
        let r = RegState::known_scalar(-1i64 as u64);
        assert_eq!(r.smin, -1);
        assert_eq!(r.smax, -1);
        assert_eq!(r.umin, u64::MAX);
        assert_eq!(r.s32_min, -1);
    }

    #[test]
    fn normalize_tightens_from_tnum() {
        let mut r = RegState::unknown_scalar();
        r.var_off = Tnum::range(0, 15);
        r.normalize();
        assert!(r.umax <= 15);
        assert!(r.smin >= 0);
        assert!(r.smax <= 15);
        assert!(r.bounds_sane());
    }

    #[test]
    fn normalize_tightens_tnum_from_bounds() {
        let mut r = RegState::unknown_scalar();
        r.umin = 0;
        r.umax = 7;
        r.combine_64_into_32();
        r.normalize();
        assert!(r.var_off.umax() <= 7, "var_off = {}", r.var_off);
    }

    #[test]
    fn deduce_bounds_cross_signs() {
        let mut r = RegState::unknown_scalar();
        r.umin = 5;
        r.umax = 10;
        r.reg_deduce_bounds();
        assert!(r.smin >= 5);
        assert!(r.smax <= 10);
    }

    #[test]
    fn combine_32_into_64_zero_extends() {
        let mut r = RegState::unknown_scalar();
        r.u32_min = 3;
        r.u32_max = 9;
        r.var_off = Tnum::UNKNOWN.cast32();
        r.combine_32_into_64();
        assert_eq!(r.umin, 3);
        assert_eq!(r.umax, 9);
        assert!(r.smin >= 0, "zero extension is non-negative");
    }

    #[test]
    fn pointer_state() {
        let r = RegState::pointer(RegType::PtrToStack);
        assert!(r.typ.is_pointer());
        assert_eq!(r.off, 0);
        assert!(r.has_const_offset());
        assert!(!r.maybe_null);
    }

    #[test]
    fn describe_renders() {
        assert_eq!(RegState::known_scalar(7).describe(), "7");
        let mut p = RegState::pointer(RegType::PtrToMapValue { map_id: 1 });
        p.maybe_null = true;
        assert!(p.describe().contains("map_value_or_null"));
    }
}
