//! Branch coverage instrumentation of the verifier.
//!
//! The paper compiles the eBPF source with kcov and feeds branch coverage
//! back to the fuzzer. Here the verifier itself is the instrumented
//! artifact: decision points throughout the analysis record a *coverage
//! point* — a `(category, a, b)` triple identifying which logic ran with
//! which operands (instruction class handled, register-type arm taken in
//! the memory checker, helper argument accepted/rejected, error emitted,
//! ...). Distinct points accumulate in a [`Coverage`] set; the fuzzer
//! treats growth of this set exactly as BVF treats new kcov branches.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// Category of a coverage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum Cat {
    /// Instruction-class dispatch in `do_check`.
    InsnClass = 1,
    /// ALU operation simulated (op, is64).
    AluOp = 2,
    /// Pointer-arithmetic path (ptr type, op).
    PtrAlu = 3,
    /// Memory access check arm (reg type, write).
    MemAccess = 4,
    /// Context field validated (offset, write).
    CtxField = 5,
    /// Stack slot operation (kind, spill).
    StackOp = 6,
    /// Conditional-jump refinement (jmp op, operand kind).
    JmpRefine = 7,
    /// Branch-taken decision (op, direction).
    BranchTaken = 8,
    /// Helper argument check (helper id, arg index).
    HelperArg = 9,
    /// Helper call accepted (helper id).
    HelperOk = 10,
    /// Kfunc call checked (kfunc id).
    Kfunc = 11,
    /// Verifier error emitted (error site).
    Error = 12,
    /// State pruning outcome (hit/miss).
    Prune = 13,
    /// Nullness / null-branch handling arm.
    NullTrack = 14,
    /// Packet-range refinement.
    PktRange = 15,
    /// LD_IMM64 pseudo resolution arm.
    Pseudo = 16,
    /// Rewrite/fixup pass arm.
    Fixup = 17,
    /// Subprogram / call-frame handling.
    Subprog = 18,
    /// Reference acquire/release tracking.
    RefTrack = 19,
    /// Bounds algebra special case.
    Bounds = 20,
    /// Atomic instruction handling.
    Atomic = 21,
}

/// A set of distinct coverage points.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    points: HashSet<u64>,
}

impl Coverage {
    /// An empty coverage map.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Records a point.
    pub fn hit(&mut self, cat: Cat, a: u32, b: u32) {
        let key = ((cat as u64) << 48) | ((a as u64 & 0xffff_ffff) << 16) | (b as u64 & 0xffff);
        self.points.insert(key);
    }

    /// Number of distinct points covered.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing was covered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Merges another coverage map in; returns how many points were new.
    pub fn merge(&mut self, other: &Coverage) -> usize {
        let before = self.points.len();
        self.points.extend(other.points.iter().copied());
        self.points.len() - before
    }

    /// Whether `other` contains any point not already in `self`.
    pub fn has_new(&self, other: &Coverage) -> bool {
        other.points.iter().any(|p| !self.points.contains(p))
    }

    /// Whether the raw point key `p` is covered.
    pub fn contains_point(&self, p: u64) -> bool {
        self.points.contains(&p)
    }

    /// Inserts a raw point key; returns whether it was new.
    pub fn insert_point(&mut self, p: u64) -> bool {
        self.points.insert(p)
    }

    /// Iterates the raw point keys (unordered).
    pub fn iter_points(&self) -> impl Iterator<Item = u64> + '_ {
        self.points.iter().copied()
    }

    /// The raw point keys in sorted order — the stable on-disk form used
    /// by corpus snapshots.
    pub fn to_sorted_points(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.points.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Rebuilds a coverage set from raw point keys.
    pub fn from_points(points: impl IntoIterator<Item = u64>) -> Coverage {
        Coverage {
            points: points.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_points_accumulate() {
        let mut c = Coverage::new();
        c.hit(Cat::InsnClass, 1, 0);
        c.hit(Cat::InsnClass, 1, 0);
        c.hit(Cat::InsnClass, 2, 0);
        c.hit(Cat::MemAccess, 1, 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn categories_do_not_collide() {
        let mut c = Coverage::new();
        c.hit(Cat::AluOp, 5, 1);
        c.hit(Cat::PtrAlu, 5, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn merge_counts_new_points() {
        let mut a = Coverage::new();
        a.hit(Cat::Error, 1, 0);
        let mut b = Coverage::new();
        b.hit(Cat::Error, 1, 0);
        b.hit(Cat::Error, 2, 0);
        assert!(a.has_new(&b));
        assert_eq!(a.merge(&b), 1);
        assert!(!a.has_new(&b));
        assert_eq!(a.len(), 2);
    }
}
