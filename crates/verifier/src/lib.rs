//! The eBPF verifier — the system under test.
//!
//! An abstract-interpretation verifier closely modeled on the Linux
//! kernel's `kernel/bpf/verifier.c`: tristate numbers ([`tnum::Tnum`]),
//! signed/unsigned 64/32-bit range tracking, ten-plus pointer types,
//! per-byte stack slot tracking with precise spills, path exploration
//! with state pruning, helper-prototype and kfunc checking, reference
//! tracking, packet ranges, nullness propagation, and rewrite passes.
//!
//! The correctness defects of the paper's Table 2 that live in the
//! verifier (bugs #1–#6 and CVE-2022-23222) are implemented as toggleable
//! injected bugs at the exact analysis sites the paper describes; see
//! [`bvf_kernel_sim::BugId`].
//!
//! The verifier is itself instrumented for branch coverage ([`cov`]),
//! playing the role kcov plays in the paper's feedback loop.

#![warn(missing_docs)]

pub mod check;
pub mod cov;
pub mod env;
pub mod errors;
pub mod fixup;
pub mod prune;
pub mod sanitize;
pub mod shape;
pub mod snapshot;
pub mod state;
pub mod tnum;
pub mod types;
pub mod verifier;

pub use cov::{Cat, Coverage};
pub use env::{AluLimitMeta, InsnMeta, KernelVersion, VerifiedProgram, VerifierOpts};
pub use errors::{ErrorKind, RejectReason, VerifierError, VerifierPhase};
pub use sanitize::{instrument, SanitizeError, SanitizeStats};
pub use shape::StateShape;
pub use snapshot::{InsnStates, RegSnapshot, SnapshotStream};
pub use tnum::Tnum;
pub use types::{RegState, RegType};
pub use verifier::{verify, VerifyOutcome};
