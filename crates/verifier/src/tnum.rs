//! Tristate numbers (tnums) — the verifier's bit-level abstract domain.
//!
//! A tnum tracks, for every bit of a 64-bit value, whether it is known-0,
//! known-1, or unknown. Representation matches `kernel/bpf/tnum.c`:
//! `value` holds the known-1 bits, `mask` holds the unknown bits, and
//! `value & mask == 0` is the representation invariant.

use serde::{Deserialize, Serialize};

/// A tristate number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tnum {
    /// Known-one bits.
    pub value: u64,
    /// Unknown bits (`value & mask == 0`).
    pub mask: u64,
}

impl Tnum {
    /// The completely unknown tnum.
    pub const UNKNOWN: Tnum = Tnum {
        value: 0,
        mask: u64::MAX,
    };

    /// A fully known constant.
    pub const fn const_val(value: u64) -> Tnum {
        Tnum { value, mask: 0 }
    }

    /// Builds a tnum from raw parts, asserting the invariant in debug.
    pub fn new(value: u64, mask: u64) -> Tnum {
        debug_assert_eq!(value & mask, 0, "tnum invariant violated");
        Tnum { value, mask }
    }

    /// The tightest tnum containing every value in `[min, max]`
    /// (`tnum_range`).
    pub fn range(min: u64, max: u64) -> Tnum {
        if min > max {
            return Tnum::UNKNOWN;
        }
        let chi = min ^ max;
        let bits = 64 - chi.leading_zeros() as u64;
        if bits > 63 {
            return Tnum::UNKNOWN;
        }
        let delta = (1u64 << bits) - 1;
        Tnum {
            value: min & !delta,
            mask: delta,
        }
    }

    /// Whether the tnum is a fully known constant.
    pub fn is_const(self) -> bool {
        self.mask == 0
    }

    /// Whether nothing is known.
    pub fn is_unknown(self) -> bool {
        self.mask == u64::MAX
    }

    /// Whether a concrete value is a possible concretization.
    pub fn contains(self, v: u64) -> bool {
        (v & !self.mask) == self.value
    }

    /// Left shift by a known amount (`tnum_lshift`).
    pub fn lshift(self, shift: u8) -> Tnum {
        Tnum {
            value: self.value << shift,
            mask: self.mask << shift,
        }
    }

    /// Logical right shift by a known amount (`tnum_rshift`).
    pub fn rshift(self, shift: u8) -> Tnum {
        Tnum {
            value: self.value >> shift,
            mask: self.mask >> shift,
        }
    }

    /// Arithmetic right shift by a known amount within `insn_bitness`
    /// (`tnum_arshift`).
    pub fn arshift(self, shift: u8, insn_bitness: u8) -> Tnum {
        if insn_bitness == 32 {
            Tnum {
                value: ((self.value as u32 as i32) >> shift) as u32 as u64,
                mask: ((self.mask as u32 as i32) >> shift) as u32 as u64,
            }
        } else {
            Tnum {
                value: ((self.value as i64) >> shift) as u64,
                mask: ((self.mask as i64) >> shift) as u64,
            }
        }
    }

    /// Addition (`tnum_add`). Named after the kernel function it
    /// mirrors, not the `Add` trait.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, b: Tnum) -> Tnum {
        let sm = self.mask.wrapping_add(b.mask);
        let sv = self.value.wrapping_add(b.value);
        let sigma = sm.wrapping_add(sv);
        let chi = sigma ^ sv;
        let mu = chi | self.mask | b.mask;
        Tnum {
            value: sv & !mu,
            mask: mu,
        }
    }

    /// Subtraction (`tnum_sub`).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, b: Tnum) -> Tnum {
        let dv = self.value.wrapping_sub(b.value);
        let alpha = dv.wrapping_add(self.mask);
        let beta = dv.wrapping_sub(b.mask);
        let chi = alpha ^ beta;
        let mu = chi | self.mask | b.mask;
        Tnum {
            value: dv & !mu,
            mask: mu,
        }
    }

    /// Bitwise AND (`tnum_and`).
    pub fn and(self, b: Tnum) -> Tnum {
        let alpha = self.value | self.mask;
        let beta = b.value | b.mask;
        let v = self.value & b.value;
        Tnum {
            value: v,
            mask: alpha & beta & !v,
        }
    }

    /// Bitwise OR (`tnum_or`).
    pub fn or(self, b: Tnum) -> Tnum {
        let v = self.value | b.value;
        let mu = self.mask | b.mask;
        Tnum {
            value: v,
            mask: mu & !v,
        }
    }

    /// Bitwise XOR (`tnum_xor`).
    pub fn xor(self, b: Tnum) -> Tnum {
        let v = self.value ^ b.value;
        let mu = self.mask | b.mask;
        Tnum {
            value: v & !mu,
            mask: mu,
        }
    }

    /// Multiplication (`tnum_mul`, the half-multiply formulation).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, b: Tnum) -> Tnum {
        let mut a = self;
        let mut b = b;
        let mut acc = Tnum::const_val(0);
        while a.value != 0 || a.mask != 0 {
            if a.value & 1 != 0 {
                acc = acc.add(Tnum {
                    value: b.value,
                    mask: b.mask,
                });
            } else if a.mask & 1 != 0 {
                acc = acc.add(Tnum {
                    value: 0,
                    mask: b.value | b.mask,
                });
            }
            a = a.rshift(1);
            b = b.lshift(1);
        }
        acc
    }

    /// Intersection: both inputs are known to describe the same value
    /// (`tnum_intersect`).
    pub fn intersect(self, b: Tnum) -> Tnum {
        let v = self.value | b.value;
        let mu = self.mask & b.mask;
        Tnum {
            value: v & !mu,
            mask: mu,
        }
    }

    /// Union: the value is described by either input (`tnum_union`).
    pub fn union(self, b: Tnum) -> Tnum {
        let v = self.value & b.value;
        let mu = self.mask | b.mask | (self.value ^ b.value);
        Tnum {
            value: v & !mu,
            mask: mu,
        }
    }

    /// Whether `self` is a subset of `b` — every value possible under
    /// `self` is possible under `b` (`tnum_in(b, self)` in kernel
    /// argument order).
    pub fn is_subset_of(self, b: Tnum) -> bool {
        if self.mask & !b.mask != 0 {
            return false;
        }
        (self.value & !b.mask) == b.value
    }

    /// Truncates to the low 32 bits (`tnum_cast(., 4)`).
    pub fn cast32(self) -> Tnum {
        Tnum {
            value: self.value & 0xffff_ffff,
            mask: self.mask & 0xffff_ffff,
        }
    }

    /// Truncates to the low `size` bytes (`tnum_cast`).
    pub fn cast(self, size: u8) -> Tnum {
        if size >= 8 {
            return self;
        }
        let keep = (1u64 << (size * 8)) - 1;
        Tnum {
            value: self.value & keep,
            mask: self.mask & keep,
        }
    }

    /// The 32-bit subregister view (`tnum_subreg`).
    pub fn subreg(self) -> Tnum {
        self.cast32()
    }

    /// Clears the low 32 bits (`tnum_clear_subreg`).
    pub fn clear_subreg(self) -> Tnum {
        Tnum {
            value: self.value >> 32 << 32,
            mask: self.mask >> 32 << 32,
        }
    }

    /// Replaces the 32-bit subregister (`tnum_with_subreg`).
    pub fn with_subreg(self, subreg: Tnum) -> Tnum {
        let hi = self.clear_subreg();
        let lo = subreg.cast32();
        Tnum {
            value: hi.value | lo.value,
            mask: hi.mask | lo.mask,
        }
    }

    /// Replaces the whole tnum with a 32-bit constant subregister
    /// (`tnum_const_subreg`).
    pub fn const_subreg(self, value: u32) -> Tnum {
        self.with_subreg(Tnum::const_val(value as u64))
    }

    /// Minimum possible unsigned value.
    pub fn umin(self) -> u64 {
        self.value
    }

    /// Maximum possible unsigned value.
    pub fn umax(self) -> u64 {
        self.value | self.mask
    }
}

impl std::fmt::Display for Tnum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_const() {
            write!(f, "{:#x}", self.value)
        } else if self.is_unknown() {
            write!(f, "?")
        } else {
            write!(f, "(v={:#x};m={:#x})", self.value, self.mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_and_unknown() {
        let c = Tnum::const_val(42);
        assert!(c.is_const());
        assert!(c.contains(42));
        assert!(!c.contains(43));
        assert!(Tnum::UNKNOWN.contains(0));
        assert!(Tnum::UNKNOWN.contains(u64::MAX));
    }

    #[test]
    fn range_covers_endpoints() {
        let t = Tnum::range(16, 31);
        assert!(t.contains(16));
        assert!(t.contains(31));
        assert!(t.contains(20));
        assert!(!t.contains(32));
        assert!(!t.contains(15));
        // Degenerate range.
        assert_eq!(Tnum::range(7, 7), Tnum::const_val(7));
        // Inverted range falls back to unknown.
        assert!(Tnum::range(5, 1).is_unknown());
    }

    #[test]
    fn add_sub_consts() {
        let a = Tnum::const_val(100);
        let b = Tnum::const_val(23);
        assert_eq!(a.add(b), Tnum::const_val(123));
        assert_eq!(a.sub(b), Tnum::const_val(77));
        assert_eq!(b.sub(a), Tnum::const_val(77u64.wrapping_neg()));
    }

    #[test]
    fn mul_consts() {
        assert_eq!(
            Tnum::const_val(6).mul(Tnum::const_val(7)),
            Tnum::const_val(42)
        );
        assert_eq!(Tnum::const_val(0).mul(Tnum::UNKNOWN), Tnum::const_val(0));
    }

    #[test]
    fn bitwise_ops() {
        let a = Tnum::const_val(0xf0);
        let b = Tnum::const_val(0x3c);
        assert_eq!(a.and(b), Tnum::const_val(0x30));
        assert_eq!(a.or(b), Tnum::const_val(0xfc));
        assert_eq!(a.xor(b), Tnum::const_val(0xcc));
    }

    #[test]
    fn shifts() {
        let t = Tnum::range(0, 15);
        let l = t.lshift(4);
        assert!(l.contains(0));
        assert!(l.contains(0xf0));
        assert!(!l.contains(0x0f));
        assert_eq!(Tnum::const_val(0x80).rshift(4), Tnum::const_val(8));
        assert_eq!(
            Tnum::const_val(0x8000_0000_0000_0000).arshift(60, 64),
            Tnum::const_val(0xffff_ffff_ffff_fff8)
        );
        assert_eq!(
            Tnum::const_val(0x8000_0000).arshift(28, 32),
            Tnum::const_val(0xffff_fff8)
        );
    }

    #[test]
    fn intersect_and_union() {
        let evens = Tnum::new(0, !1);
        let small = Tnum::range(0, 7);
        let both = evens.intersect(small);
        for v in [0u64, 2, 4, 6] {
            assert!(both.contains(v));
        }
        assert!(!both.contains(1));
        let u = Tnum::const_val(4).union(Tnum::const_val(6));
        assert!(u.contains(4) && u.contains(6));
    }

    #[test]
    fn subset_relation() {
        let small = Tnum::range(0, 7);
        let big = Tnum::range(0, 255);
        assert!(small.is_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(Tnum::const_val(3).is_subset_of(small));
        assert!(small.is_subset_of(Tnum::UNKNOWN));
    }

    #[test]
    fn subreg_ops() {
        let t = Tnum::const_val(0x1122_3344_5566_7788);
        assert_eq!(t.subreg(), Tnum::const_val(0x5566_7788));
        assert_eq!(t.clear_subreg(), Tnum::const_val(0x1122_3344_0000_0000));
        assert_eq!(
            t.with_subreg(Tnum::const_val(0xaabb_ccdd)),
            Tnum::const_val(0x1122_3344_aabb_ccdd)
        );
        assert_eq!(t.cast(2), Tnum::const_val(0x7788));
        assert_eq!(t.cast(8), t);
    }

    #[test]
    fn umin_umax() {
        let t = Tnum::range(16, 31);
        assert!(t.umin() <= 16);
        assert!(t.umax() >= 31);
        assert_eq!(Tnum::const_val(9).umin(), 9);
        assert_eq!(Tnum::const_val(9).umax(), 9);
    }
}
