//! Verifier environment, options, and output types.

use std::collections::{BTreeSet, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use bvf_isa::{Program, Reg};
use bvf_kernel_sim::progtype::ProgType;
use bvf_kernel_sim::Kernel;

use crate::cov::Coverage;

/// Simulated kernel version under test — gates verifier features the way
/// the paper's three targets (v5.15, v6.1, bpf-next) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelVersion {
    /// Linux v5.15: no kfunc calls, no sign-extending loads.
    V5_15,
    /// Linux v6.1: kfunc calls enabled.
    V6_1,
    /// bpf-next: kfuncs, sign-extending loads, and the newest helpers.
    BpfNext,
}

impl KernelVersion {
    /// All versions used in the coverage experiment.
    pub const ALL: [KernelVersion; 3] = [
        KernelVersion::V5_15,
        KernelVersion::V6_1,
        KernelVersion::BpfNext,
    ];

    /// Whether kfunc calls are supported.
    pub fn has_kfuncs(self) -> bool {
        !matches!(self, KernelVersion::V5_15)
    }

    /// Whether `BPF_MEMSX` sign-extending loads are supported.
    pub fn has_memsx(self) -> bool {
        matches!(self, KernelVersion::BpfNext)
    }

    /// Whether a helper id is available in this version.
    pub fn helper_available(self, id: u32) -> bool {
        use bvf_kernel_sim::helpers::proto::ids;
        match id {
            ids::MAP_SUM_VALUES => matches!(self, KernelVersion::BpfNext),
            ids::RINGBUF_RESERVE | ids::RINGBUF_SUBMIT | ids::RINGBUF_DISCARD => {
                !matches!(self, KernelVersion::V5_15)
            }
            _ => true,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelVersion::V5_15 => "v5.15",
            KernelVersion::V6_1 => "v6.1",
            KernelVersion::BpfNext => "bpf-next",
        }
    }
}

/// Verifier options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifierOpts {
    /// Kernel version feature set.
    pub version: KernelVersion,
    /// Maximum instructions processed across all paths before the program
    /// is rejected as too complex (`BPF_COMPLEXITY_LIMIT_INSNS` analog).
    pub insn_limit: usize,
    /// Whether to retain a verification log.
    pub log: bool,
    /// Unprivileged load (`!CAP_BPF`): pointer leaks, pointer
    /// comparisons, partial pointer copies, and unknown-sign pointer
    /// arithmetic are rejected, and only socket-filter-class program
    /// types may load.
    pub unprivileged: bool,
    /// Record per-instruction abstract-state snapshots during the main
    /// walk (consumed by the `bvf-diff` differential oracle). Off by
    /// default: plain loads pay nothing.
    pub snapshots: bool,
    /// Use the fingerprint-bucketed explored-state index to skip
    /// `states_equal` candidates whose structural shape cannot subsume
    /// the current state. A pure filter — verdicts, coverage, and
    /// findings are identical with it off (the slow path exists for
    /// differential testing and benchmarks).
    pub prune_index: bool,
}

impl Default for VerifierOpts {
    fn default() -> Self {
        VerifierOpts {
            version: KernelVersion::BpfNext,
            insn_limit: 100_000,
            log: false,
            unprivileged: false,
            snapshots: false,
            prune_index: true,
        }
    }
}

/// Per-instruction metadata computed during verification, consumed by the
/// fixup pass, BVF's sanitation instrumentation, and the runtime.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct InsnMeta {
    /// This load/store should be sanitized (it is a real memory access
    /// whose target is not a verifier-constant stack slot).
    pub sanitize_mem: bool,
    /// Access is through a BTF pointer: the JIT attaches an exception
    /// table entry, so a faulting access reads zero instead of oopsing.
    pub ex_handled: bool,
    /// The access is `R10`-based with a constant offset — provably inside
    /// the stack, skipped by the instrumentation-reduction strategy.
    pub stack_const: bool,
    /// Runtime `alu_limit` assertion for a pointer-arithmetic instruction.
    pub alu_limit: Option<AluLimitMeta>,
    /// The instruction was emitted by a rewrite pass (not original program
    /// text); instrumentation skips it.
    pub emitted_by_rewrite: bool,
}

/// Runtime bound for a sanitized pointer-ALU instruction: the verifier
/// concluded `|scalar| <= limit` must hold; BVF emits a runtime assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AluLimitMeta {
    /// Inclusive magnitude bound on the scalar operand.
    pub limit: u64,
    /// The register holding the scalar operand.
    pub scalar_reg: Reg,
    /// True when the scalar moves the pointer downwards (subtract of a
    /// non-negative scalar, or add of a non-positive one).
    pub downward: bool,
    /// True for `SUB`: the runtime operand's sign is opposite to the
    /// pointer movement, so the emitted check negates it first.
    pub negate: bool,
}

/// A successfully verified (and rewritten) program.
#[derive(Debug, Clone)]
pub struct VerifiedProgram {
    /// The rewritten program (pseudo loads resolved to addresses).
    pub prog: Program,
    /// Program type it was verified for.
    pub prog_type: ProgType,
    /// Per-slot metadata (same length as `prog.insn_count()`).
    pub insn_meta: Vec<InsnMeta>,
    /// Helper ids the program calls.
    pub used_helpers: BTreeSet<u32>,
    /// Kfunc ids the program calls.
    pub used_kfuncs: BTreeSet<u32>,
    /// Map ids referenced by the program.
    pub used_maps: BTreeSet<u32>,
    /// Instructions processed during verification (complexity measure).
    pub insns_processed: usize,
    /// The verification log (empty unless `VerifierOpts::log`).
    pub log: Vec<String>,
}

/// The verifier working state for one program (`bpf_verifier_env`).
pub struct Verifier<'a> {
    /// The kernel whose tables (maps, BTF, helper protos) validation runs
    /// against.
    pub(crate) kernel: &'a Kernel,
    /// Options.
    pub(crate) opts: VerifierOpts,
    /// Working copy of the program; fixup rewrites it in place.
    pub(crate) prog: Program,
    /// Program type.
    pub(crate) prog_type: ProgType,
    /// Which slots start an instruction.
    pub(crate) insn_starts: Vec<bool>,
    /// Prune points (control-flow joins, back-edge targets, and
    /// subprogram entries).
    pub(crate) prune_points: HashSet<usize>,
    /// Coverage collected during this verification.
    pub cov: Coverage,
    /// Verification log.
    pub(crate) log: Vec<String>,
    /// Id allocator for nullable pointers, references, scalar links.
    pub(crate) next_id: u32,
    /// Per-slot metadata.
    pub(crate) insn_meta: Vec<InsnMeta>,
    /// States remembered at prune points, fingerprint-indexed.
    pub(crate) explored: HashMap<usize, crate::shape::ExploredPoint>,
    /// Instructions processed so far.
    pub(crate) insn_processed: usize,
    /// Helper ids seen.
    pub(crate) used_helpers: BTreeSet<u32>,
    /// Kfunc ids seen.
    pub(crate) used_kfuncs: BTreeSet<u32>,
    /// Map ids referenced.
    pub(crate) used_maps: BTreeSet<u32>,
    /// Entry points of bpf-to-bpf functions.
    pub(crate) subprog_starts: BTreeSet<usize>,
    /// Register state being stored by the current `STX` instruction, used
    /// by the stack arm for precise spill tracking.
    pub(crate) stack_spill_candidate: Option<crate::types::RegState>,
    /// Per-instruction `alu_limit` merge state across explored paths:
    /// `Some(meta)` = all paths so far agree (limits widened to the max),
    /// `None` = paths disagree on direction/operand or a path has no
    /// derivable limit — the runtime check is dropped (the kernel's
    /// `REASON_PATHS` situation).
    pub(crate) alu_limit_state: HashMap<usize, Option<AluLimitMeta>>,
    /// Wall-time per verification phase; observational only — no pass
    /// reads it back, so timing noise cannot change a verdict.
    pub timings: bvf_telemetry::PhaseTimings,
    /// Per-instruction abstract-state snapshots of the main walk; empty
    /// unless [`VerifierOpts::snapshots`] is set.
    pub snapshots: crate::snapshot::SnapshotStream,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for one load attempt.
    pub fn new(
        kernel: &'a Kernel,
        prog: &Program,
        prog_type: ProgType,
        opts: VerifierOpts,
    ) -> Verifier<'a> {
        let n = prog.insn_count();
        let snapshots = if opts.snapshots {
            crate::snapshot::SnapshotStream::new(n)
        } else {
            crate::snapshot::SnapshotStream::default()
        };
        Verifier {
            kernel,
            opts,
            prog: prog.clone(),
            prog_type,
            insn_starts: Vec::new(),
            prune_points: HashSet::new(),
            cov: Coverage::new(),
            log: Vec::new(),
            next_id: 0,
            insn_meta: vec![InsnMeta::default(); n],
            explored: HashMap::new(),
            insn_processed: 0,
            used_helpers: BTreeSet::new(),
            used_kfuncs: BTreeSet::new(),
            used_maps: BTreeSet::new(),
            subprog_starts: BTreeSet::new(),
            stack_spill_candidate: None,
            alu_limit_state: HashMap::new(),
            timings: bvf_telemetry::PhaseTimings::default(),
            snapshots,
        }
    }

    /// Allocates a fresh id.
    pub(crate) fn new_id(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id
    }

    /// Appends a log line when logging is enabled.
    pub(crate) fn logln(&mut self, msg: impl FnOnce() -> String) {
        if self.opts.log {
            self.log.push(msg());
        }
    }

    /// Whether an injected verifier defect is present in this kernel.
    pub(crate) fn has_bug(&self, bug: bvf_kernel_sim::BugId) -> bool {
        self.kernel.has_bug(bug)
    }
}
