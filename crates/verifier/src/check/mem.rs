//! Memory access checking (`check_mem_access`).
//!
//! Validates every load/store against the abstract state: stack slot
//! tracking (spill/fill), context layout rules, map value bounds, packet
//! ranges, BTF object bounds, and allocated-memory bounds. Bug #2 — the
//! incorrect `task_struct` access validation — is injected in the BTF arm.

use bvf_isa::{InsnKind, Reg, Size};
use bvf_kernel_sim::btf::{ids as btf_ids, BtfAccess, BtfAccessError};
use bvf_kernel_sim::progtype::CtxAccess;
use bvf_kernel_sim::BugId;

use crate::cov::Cat;
use crate::env::Verifier;
use crate::errors::{RejectReason, VerifierError};
use crate::state::{StackByte, StackSlot, VerifierState};
use crate::types::{RegState, RegType};

/// Why the memory is being accessed; stores and atomics need writability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Read,
    Write,
    /// Atomic read-modify-write (needs both).
    Atomic,
}

impl AccessKind {
    fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Atomic)
    }
}

impl<'a> Verifier<'a> {
    /// Checks one load/store/atomic instruction and updates state.
    pub(crate) fn check_mem(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        kind: &InsnKind,
    ) -> Result<(), VerifierError> {
        match *kind {
            InsnKind::Ldx {
                size,
                dst,
                src,
                off,
                sign_extend,
            } => {
                if sign_extend && !self.opts.version.has_memsx() {
                    self.cov.hit(Cat::Error, 200, 0);
                    return Err(VerifierError::invalid(
                        RejectReason::UnsupportedInsn,
                        pc,
                        "BPF_MEMSX loads not supported by this kernel",
                    ));
                }
                self.check_reg_init(state, src, pc)?;
                let loaded = self.check_access(state, pc, src, off, size, AccessKind::Read)?;
                let mut out = loaded.unwrap_or_else(|| {
                    // A narrow load zero-extends: the result is bounded by
                    // the access width (`coerce_reg_to_size`).
                    let mut r = RegState::unknown_scalar();
                    if size != Size::Dw && !sign_extend {
                        r.var_off = crate::tnum::Tnum::UNKNOWN.cast(size.bytes() as u8);
                        r.umin = 0;
                        r.umax = (1u64 << (size.bytes() * 8)) - 1;
                        r.combine_64_into_32();
                        r.normalize();
                    }
                    r
                });
                if sign_extend && out.typ == RegType::Scalar {
                    // Sign extension scrambles unsigned reasoning; keep
                    // constants, drop the rest.
                    out = match out.const_value() {
                        Some(v) => {
                            let sv = match size {
                                Size::B => v as u8 as i8 as i64 as u64,
                                Size::H => v as u16 as i16 as i64 as u64,
                                Size::W => v as u32 as i32 as i64 as u64,
                                Size::Dw => v,
                            };
                            RegState::known_scalar(sv)
                        }
                        None => RegState::unknown_scalar(),
                    };
                }
                *state.cur_mut().reg_mut(dst) = out;
                Ok(())
            }
            InsnKind::St { size, dst, off, .. } => {
                self.check_reg_init(state, dst, pc)?;
                self.check_access(state, pc, dst, off, size, AccessKind::Write)?;
                // An immediate store writes known data; stack tracking
                // happened inside check_access via the value param below.
                Ok(())
            }
            InsnKind::Stx {
                size,
                dst,
                src,
                off,
            } => {
                self.check_reg_init(state, src, pc)?;
                self.check_reg_init(state, dst, pc)?;
                // Unprivileged: storing a pointer anywhere user space can
                // read it back (map values, packets) leaks kernel
                // addresses.
                if self.opts.unprivileged
                    && state.cur().reg(src).typ.is_pointer()
                    && state.cur().reg(dst).typ != RegType::PtrToStack
                {
                    self.cov.hit(Cat::Error, 222, 0);
                    return Err(VerifierError::access(
                        RejectReason::UnprivPtrOp,
                        pc,
                        format!(
                            "R{} leaks addr into {}",
                            src.as_u8(),
                            state.cur().reg(dst).typ.name()
                        ),
                    )
                    .with_reg(src.as_u8()));
                }
                // Spilling to the stack is handled inside the stack arm.
                let src_state = *state.cur().reg(src);
                self.stack_spill_candidate = Some(src_state);
                let res = self.check_access(state, pc, dst, off, size, AccessKind::Write);
                self.stack_spill_candidate = None;
                res?;
                Ok(())
            }
            InsnKind::Atomic {
                op,
                size,
                dst,
                src,
                off,
            } => {
                self.cov.hit(Cat::Atomic, op.to_imm() as u32, size as u32);
                self.check_reg_init(state, src, pc)?;
                self.check_reg_init(state, dst, pc)?;
                if state.cur().reg(src).typ.is_pointer() {
                    self.cov.hit(Cat::Error, 201, 0);
                    return Err(VerifierError::access(
                        RejectReason::AtomicOpInvalid,
                        pc,
                        "atomic operand must be a scalar",
                    ));
                }
                // Atomics on the stack or ctx are rejected by the kernel;
                // map values and allocated memory are fine.
                let base = state.cur().reg(dst).typ;
                if matches!(base, RegType::PtrToCtx | RegType::PtrToPacket) {
                    self.cov.hit(Cat::Error, 202, 0);
                    return Err(VerifierError::access(
                        RejectReason::AtomicOpInvalid,
                        pc,
                        format!("atomic access to {} prohibited", base.name()),
                    ));
                }
                self.check_access(state, pc, dst, off, size, AccessKind::Atomic)?;
                if op.fetches() {
                    let fetch_reg = if op == bvf_isa::AtomicOp::Cmpxchg {
                        Reg::R0
                    } else {
                        src
                    };
                    *state.cur_mut().reg_mut(fetch_reg) = RegState::unknown_scalar();
                }
                Ok(())
            }
            _ => unreachable!("non-memory instruction routed to check_mem"),
        }
    }

    /// Core access validation. Returns the loaded register state for
    /// reads that yield something more precise than an unknown scalar.
    pub(crate) fn check_access(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        base: Reg,
        off: i16,
        size: Size,
        kind: AccessKind,
    ) -> Result<Option<RegState>, VerifierError> {
        let reg = *state.cur().reg(base);
        let bytes = size.bytes();
        self.cov
            .hit(Cat::MemAccess, reg.typ.tag(), kind.is_write() as u32);

        if reg.maybe_null {
            self.cov.hit(Cat::Error, 203, 0);
            return Err(VerifierError::access(
                RejectReason::NullPtrDeref,
                pc,
                format!(
                    "R{} invalid mem access '{}_or_null'",
                    base.as_u8(),
                    reg.typ.name()
                ),
            )
            .with_reg(base.as_u8()));
        }

        match reg.typ {
            RegType::PtrToStack => self.check_stack_access(state, pc, base, reg, off, bytes, kind),
            RegType::PtrToCtx => {
                if !reg.has_const_offset() {
                    self.cov.hit(Cat::Error, 204, 0);
                    return Err(VerifierError::access(
                        RejectReason::CtxAccessInvalid,
                        pc,
                        "variable ctx access prohibited",
                    ));
                }
                let total = reg.off as i64 + off as i64;
                if total < 0 || total > u32::MAX as i64 {
                    self.cov.hit(Cat::Error, 205, 0);
                    return Err(VerifierError::access(
                        RejectReason::CtxAccessInvalid,
                        pc,
                        "invalid negative ctx offset",
                    ));
                }
                let layout = self.prog_type.ctx_layout();
                match layout.check_access(total as u32, bytes, kind.is_write()) {
                    Ok(CtxAccess::Scalar) => {
                        self.cov
                            .hit(Cat::CtxField, total as u32, kind.is_write() as u32);
                        Ok(None)
                    }
                    Ok(CtxAccess::PacketData) => {
                        self.cov.hit(Cat::CtxField, total as u32, 2);
                        let mut r = RegState::pointer(RegType::PtrToPacket);
                        r.id = self.new_id();
                        Ok(Some(r))
                    }
                    Ok(CtxAccess::PacketEnd) => {
                        self.cov.hit(Cat::CtxField, total as u32, 3);
                        Ok(Some(RegState::pointer(RegType::PtrToPacketEnd)))
                    }
                    Err(()) => {
                        self.cov.hit(Cat::Error, 206, total as u32);
                        Err(VerifierError::access(
                            RejectReason::CtxAccessInvalid,
                            pc,
                            format!("invalid bpf_context access off={total} size={bytes}"),
                        ))
                    }
                }
            }
            RegType::PtrToMapValue { map_id } => {
                let value_size = self
                    .kernel
                    .maps
                    .get(map_id)
                    .map(|m| m.def.value_size)
                    .unwrap_or(0) as i64;
                self.check_bounded_region(pc, base, &reg, off, bytes, value_size, "map_value")?;
                self.mark_sanitize(pc);
                Ok(None)
            }
            RegType::PtrToMem { size: mem_size, .. } => {
                self.check_bounded_region(pc, base, &reg, off, bytes, mem_size as i64, "mem")?;
                self.mark_sanitize(pc);
                Ok(None)
            }
            RegType::PtrToPacket => {
                // Packet access requires a verified range from a
                // comparison against pkt_end.
                if kind.is_write()
                    && !matches!(
                        self.prog_type,
                        bvf_kernel_sim::progtype::ProgType::Xdp
                            | bvf_kernel_sim::progtype::ProgType::SchedCls
                    )
                {
                    self.cov.hit(Cat::Error, 207, 0);
                    return Err(VerifierError::access(
                        RejectReason::PacketAccessInvalid,
                        pc,
                        "cannot write into packet",
                    ));
                }
                let total = reg.off as i64 + off as i64;
                let end = total + bytes as i64;
                let var_max = if reg.has_const_offset() {
                    0
                } else {
                    reg.umax as i64
                };
                if total < 0 || var_max.saturating_add(end) > reg.pkt_range as i64 {
                    self.cov.hit(Cat::Error, 208, 0);
                    return Err(VerifierError::access(
                        RejectReason::PacketAccessInvalid,
                        pc,
                        format!(
                            "invalid access to packet, off={off} size={bytes}, R{}(pkt_range={})",
                            base.as_u8(),
                            reg.pkt_range
                        ),
                    )
                    .with_reg(base.as_u8()));
                }
                self.cov
                    .hit(Cat::PktRange, (reg.pkt_range as u32).min(64), 0);
                self.mark_sanitize(pc);
                Ok(None)
            }
            RegType::PtrToBtfId { btf_id } => {
                if kind.is_write() {
                    self.cov.hit(Cat::Error, 209, 0);
                    return Err(VerifierError::access(
                        RejectReason::BtfAccessInvalid,
                        pc,
                        "writes to BTF pointers are not allowed",
                    ));
                }
                if !reg.has_const_offset() {
                    self.cov.hit(Cat::Error, 210, 0);
                    return Err(VerifierError::access(
                        RejectReason::BtfAccessInvalid,
                        pc,
                        "variable offset btf_id access prohibited",
                    ));
                }
                let total = reg.off as i64 + off as i64;
                if total < 0 {
                    self.cov.hit(Cat::Error, 211, 0);
                    return Err(VerifierError::access(
                        RejectReason::BtfAccessInvalid,
                        pc,
                        "negative btf_id offset",
                    ));
                }
                let access = if self.has_bug(BugId::TaskStructOob) && btf_id == btf_ids::TASK_STRUCT
                {
                    // Bug #2: the buggy validation only checks that the
                    // *offset* is inside the object, ignoring the access
                    // size — `off + size` may run past the end.
                    let ty_size = self
                        .kernel
                        .btf
                        .type_by_id(btf_id)
                        .map(|t| t.size)
                        .unwrap_or(0) as i64;
                    if total < ty_size {
                        Ok(BtfAccess::Scalar)
                    } else {
                        Err(BtfAccessError::OutOfBounds {
                            off: total as u32,
                            size: bytes,
                            type_size: ty_size as u32,
                        })
                    }
                } else {
                    self.kernel.btf.struct_access(btf_id, total as u32, bytes)
                };
                self.cov.hit(Cat::MemAccess, 300 + btf_id, total as u32);
                match access {
                    Ok(BtfAccess::Scalar) => {
                        // BTF loads get an exception-table entry: a fault
                        // reads zero instead of crashing.
                        self.insn_meta[pc].ex_handled = true;
                        self.mark_sanitize(pc);
                        Ok(None)
                    }
                    Ok(BtfAccess::Ptr(target)) => {
                        self.insn_meta[pc].ex_handled = true;
                        self.mark_sanitize(pc);
                        let r = RegState::pointer(RegType::PtrToBtfId { btf_id: target });
                        Ok(Some(r))
                    }
                    Err(e) => {
                        self.cov.hit(Cat::Error, 212, 0);
                        Err(VerifierError::access(
                            RejectReason::BtfAccessInvalid,
                            pc,
                            format!("invalid access to btf_id {btf_id}: {e:?}"),
                        ))
                    }
                }
            }
            RegType::ConstPtrToMap { .. } => {
                self.cov.hit(Cat::Error, 213, 0);
                Err(VerifierError::access(
                    RejectReason::MemAccessInvalid,
                    pc,
                    format!("R{} invalid mem access 'map_ptr'", base.as_u8()),
                )
                .with_reg(base.as_u8()))
            }
            RegType::PtrToPacketEnd => {
                self.cov.hit(Cat::Error, 214, 0);
                Err(VerifierError::access(
                    RejectReason::PacketAccessInvalid,
                    pc,
                    format!("R{} invalid mem access 'pkt_end'", base.as_u8()),
                )
                .with_reg(base.as_u8()))
            }
            RegType::Scalar => {
                self.cov.hit(Cat::Error, 215, 0);
                Err(VerifierError::access(
                    RejectReason::MemAccessInvalid,
                    pc,
                    format!("R{} invalid mem access 'scalar'", base.as_u8()),
                )
                .with_reg(base.as_u8()))
            }
            RegType::NotInit => {
                self.cov.hit(Cat::Error, 216, 0);
                Err(VerifierError::access(
                    RejectReason::UninitRegRead,
                    pc,
                    format!("R{} !read_ok", base.as_u8()),
                )
                .with_reg(base.as_u8()))
            }
        }
    }

    /// Bounds check for map values and sized memory regions, including the
    /// variable part of the pointer.
    #[allow(clippy::too_many_arguments)]
    fn check_bounded_region(
        &mut self,
        pc: usize,
        base: Reg,
        reg: &RegState,
        off: i16,
        bytes: u32,
        region_size: i64,
        what: &str,
    ) -> Result<(), VerifierError> {
        // The pointer's total offset = fixed off + variable part (bounds
        // tracked in the reg) + the instruction's constant offset.
        let lo = reg.off as i64 + reg.smin.min(reg.umin as i64) + off as i64;
        let hi_var = if reg.has_const_offset() {
            0
        } else {
            reg.umax as i64
        };
        let hi = reg.off as i64 + hi_var + off as i64 + bytes as i64;
        if reg.smin < 0 && !reg.has_const_offset() {
            self.cov.hit(Cat::Error, 217, 0);
            return Err(VerifierError::access(
                RejectReason::MemOobAccess,
                pc,
                format!(
                    "R{} min value is negative, either use unsigned index or do a if (index >=0) check",
                    base.as_u8()
                ),
            )
            .with_reg(base.as_u8()));
        }
        if lo < 0 || hi > region_size {
            self.cov.hit(Cat::Error, 218, 0);
            return Err(VerifierError::access(
                RejectReason::MemOobAccess,
                pc,
                format!(
                    "invalid access to {what}, off={} size={bytes} {what}_size={region_size}",
                    reg.off as i64 + off as i64
                ),
            )
            .with_reg(base.as_u8()));
        }
        Ok(())
    }

    /// Stack access: offset must be constant; handles spill/fill tracking.
    #[allow(clippy::too_many_arguments)]
    fn check_stack_access(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        base: Reg,
        reg: RegState,
        off: i16,
        bytes: u32,
        kind: AccessKind,
    ) -> Result<Option<RegState>, VerifierError> {
        if !reg.has_const_offset() {
            self.cov.hit(Cat::Error, 219, 0);
            return Err(VerifierError::access(
                RejectReason::StackOobAccess,
                pc,
                format!("R{} variable stack access prohibited", base.as_u8()),
            )
            .with_reg(base.as_u8()));
        }
        let total = reg.off as i64 + reg.var_off.value as i64 + off as i64;
        if total >= 0 || total < -(bvf_isa::reg::STACK_SIZE as i64) || total + bytes as i64 > 0 {
            self.cov.hit(Cat::Error, 220, 0);
            return Err(VerifierError::access(
                RejectReason::StackOobAccess,
                pc,
                format!("invalid stack off={total} size={bytes}"),
            )
            .with_reg(base.as_u8())
            .with_stack_off(total as i32));
        }
        let total = total as i32;

        // R10-based constant-offset accesses are provably in bounds; the
        // instrumentation-reduction strategy skips them.
        if base == Reg::R10 {
            self.insn_meta[pc].stack_const = true;
        } else {
            self.mark_sanitize(pc);
        }

        match kind {
            AccessKind::Write | AccessKind::Atomic => {
                self.cov.hit(Cat::StackOp, 1, (total & 0xffff) as u32);
                let spill = self.stack_spill_candidate.take();
                self.stack_write(state, total, bytes, spill);
                if kind == AccessKind::Atomic {
                    // Atomic also reads; require initialized bytes.
                    self.stack_read(state, pc, total, bytes).map(|_| ())?;
                }
                Ok(None)
            }
            AccessKind::Read => {
                self.cov.hit(Cat::StackOp, 0, (total & 0xffff) as u32);
                self.stack_read(state, pc, total, bytes)
            }
        }
    }

    /// Records a stack write; an 8-byte aligned register store spills the
    /// register state precisely.
    fn stack_write(
        &mut self,
        state: &mut VerifierState,
        off: i32,
        bytes: u32,
        spill: Option<RegState>,
    ) {
        // Unshare the frame's stack once up front; every path below
        // writes to it.
        let stack = state.cur_mut().stack_mut();
        if bytes == 8 && off % 8 == 0 {
            let (slot, _) = crate::state::FuncState::stack_index(off).expect("validated");
            if let Some(src) = spill {
                stack[slot] = StackSlot {
                    bytes: [StackByte::Spill; 8],
                    spilled: src,
                };
                self.cov.hit(Cat::StackOp, 2, src.typ.name().len() as u32);
                return;
            }
            // Full-width immediate store: value is known but we track it
            // as MISC (kernel tracks ZERO specially for imm 0).
            stack[slot] = StackSlot {
                bytes: [StackByte::Misc; 8],
                spilled: RegState::not_init(),
            };
            return;
        }
        // Partial write: invalidate any spill, mark bytes misc.
        for i in 0..bytes as i32 {
            let (slot, byte) = crate::state::FuncState::stack_index(off + i).expect("validated");
            if stack[slot].is_full_spill() {
                stack[slot].bytes = [StackByte::Misc; 8];
                stack[slot].spilled = RegState::not_init();
            }
            stack[slot].bytes[byte] = StackByte::Misc;
        }
    }

    /// Validates a stack read; fills a spilled register when aligned.
    fn stack_read(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        off: i32,
        bytes: u32,
    ) -> Result<Option<RegState>, VerifierError> {
        let frame = state.cur();
        if bytes == 8 && off % 8 == 0 {
            let (slot, _) = crate::state::FuncState::stack_index(off).expect("validated");
            let s = &frame.stack[slot];
            if s.is_full_spill() {
                self.cov.hit(Cat::StackOp, 3, 0);
                return Ok(Some(s.spilled));
            }
        }
        for i in 0..bytes as i32 {
            let (slot, byte) = crate::state::FuncState::stack_index(off + i).expect("validated");
            let b = frame.stack[slot].bytes[byte];
            if b == StackByte::Invalid {
                self.cov.hit(Cat::Error, 221, 0);
                return Err(VerifierError::access(
                    RejectReason::StackUninitRead,
                    pc,
                    format!("invalid read from stack off {} — uninitialized", off + i),
                )
                .with_stack_off(off + i));
            }
        }
        Ok(None)
    }

    /// Flags the instruction for memory-access sanitation.
    fn mark_sanitize(&mut self, pc: usize) {
        self.insn_meta[pc].sanitize_mem = true;
    }
}
