//! Instruction-class checkers.

pub mod alu;
pub(crate) mod call;
pub(crate) mod jump;
pub(crate) mod mem;
