//! Instruction-class checkers.

pub mod alu;
pub(crate) mod call;
pub mod jump;
pub(crate) mod mem;
