//! Conditional jump analysis (`check_cond_jmp_op`).
//!
//! Handles branch-taken evaluation, range refinement in both branches
//! (`reg_set_min_max`), linked-scalar propagation (`sync_linked_regs`,
//! the kernel's `find_equal_scalars`), null-pointer branch resolution
//! (`mark_ptr_or_null_regs`), packet-range discovery
//! (`find_good_pkt_pointers`), and the jump-equality **nullness
//! propagation** pass in which bug #1 lives.

use bvf_isa::decode::SourceOperandValue;
use bvf_isa::{InsnKind, JmpOp, Reg};
use bvf_kernel_sim::BugId;

use crate::cov::Cat;
use crate::env::Verifier;
use crate::errors::{RejectReason, VerifierError};
use crate::state::VerifierState;
use crate::types::{RegState, RegType};

/// Outcome of analyzing a conditional jump.
pub(crate) enum JumpOutcome {
    /// Only the fall-through path is live.
    FallthroughOnly,
    /// Only the jump path is live.
    JumpOnly,
    /// Both paths are live; the second state is the jump branch.
    Both(Box<VerifierState>),
}

impl<'a> Verifier<'a> {
    /// Analyzes a conditional jump, refining `state` into the
    /// fall-through version and returning the branch disposition.
    pub(crate) fn check_cond_jmp(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        kind: &InsnKind,
    ) -> Result<JumpOutcome, VerifierError> {
        let InsnKind::JmpCond {
            op, is32, dst, src, ..
        } = *kind
        else {
            unreachable!("non-conditional jump routed to check_cond_jmp");
        };
        self.check_reg_init(state, dst, pc)?;
        let dst_state = *state.cur().reg(dst);
        let (src_state, src_reg) = match src {
            SourceOperandValue::Reg(r) => {
                self.check_reg_init(state, r, pc)?;
                (*state.cur().reg(r), Some(r))
            }
            SourceOperandValue::Imm(i) => (RegState::known_scalar(i as i64 as u64), None),
        };
        self.cov.hit(
            Cat::JmpRefine,
            op as u32,
            (is32 as u32) << 1 | src_reg.is_some() as u32,
        );

        // Pointer comparisons: only a restricted set is meaningful.
        if dst_state.typ.is_pointer() || src_state.typ.is_pointer() {
            return self.pointer_cond_jmp(state, pc, op, is32, dst, dst_state, src_reg, src_state);
        }

        // Scalar vs scalar/imm: decide or refine.
        if let Some(taken) = branch_taken(op, is32, &dst_state, &src_state) {
            self.cov.hit(Cat::BranchTaken, op as u32, taken as u32);
            return Ok(if taken {
                JumpOutcome::JumpOnly
            } else {
                JumpOutcome::FallthroughOnly
            });
        }

        // Both branches live: refine dst (and reg src) in each, then
        // propagate the refinement to every register linked by a shared
        // scalar id (`sync_linked_regs`).
        let mut jump_state = state.clone();
        {
            let (mut d_t, mut s_t) = (dst_state, src_state);
            reg_set_min_max(op, is32, true, &mut d_t, &mut s_t);
            *jump_state.cur_mut().reg_mut(dst) = d_t;
            if let Some(r) = src_reg {
                *jump_state.cur_mut().reg_mut(r) = s_t;
            }
            sync_linked_regs(&mut jump_state, &d_t);
            sync_linked_regs(&mut jump_state, &s_t);
        }
        {
            let (mut d_f, mut s_f) = (dst_state, src_state);
            reg_set_min_max(op, is32, false, &mut d_f, &mut s_f);
            *state.cur_mut().reg_mut(dst) = d_f;
            if let Some(r) = src_reg {
                *state.cur_mut().reg_mut(r) = s_f;
            }
            sync_linked_regs(state, &d_f);
            sync_linked_regs(state, &s_f);
        }
        self.cov
            .hit(Cat::JmpRefine, 500, (dst_state.id != 0) as u32);
        Ok(JumpOutcome::Both(Box::new(jump_state)))
    }

    /// Pointer-involving conditional jumps.
    #[allow(clippy::too_many_arguments)]
    fn pointer_cond_jmp(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        op: JmpOp,
        is32: bool,
        dst: Reg,
        dst_state: RegState,
        src_reg: Option<Reg>,
        src_state: RegState,
    ) -> Result<JumpOutcome, VerifierError> {
        if is32 {
            self.cov.hit(Cat::Error, 230, 0);
            return Err(VerifierError::access(
                RejectReason::PtrComparisonForbidden,
                pc,
                "32-bit pointer comparison prohibited",
            ));
        }

        // Packet-range discovery: `if data + N > data_end` style checks.
        if let Some(outcome) = self.packet_range_jmp(state, op, dst, dst_state, src_state) {
            return Ok(outcome);
        }

        // Null checks: nullable pointer compared (JEQ/JNE) against zero.
        let zero_cmp = src_state.const_value() == Some(0);

        // Unprivileged: any pointer comparison other than a null check
        // leaks pointer bits into the control flow.
        if self.opts.unprivileged && !(zero_cmp && matches!(op, JmpOp::Jeq | JmpOp::Jne)) {
            self.cov.hit(Cat::Error, 231, 0);
            return Err(VerifierError::access(
                RejectReason::UnprivPtrOp,
                pc,
                format!("R{} pointer comparison prohibited", dst.as_u8()),
            )
            .with_reg(dst.as_u8()));
        }
        if dst_state.maybe_null && zero_cmp && matches!(op, JmpOp::Jeq | JmpOp::Jne) {
            self.cov.hit(Cat::NullTrack, 1, (op == JmpOp::Jeq) as u32);
            let mut jump_state = state.clone();
            // JEQ: jump branch = null, fallthrough = non-null.
            // JNE: jump branch = non-null, fallthrough = null.
            let (null_state, nonnull_state) = if op == JmpOp::Jeq {
                (&mut jump_state, state)
            } else {
                (state, &mut jump_state)
            };
            // In the null branch an acquired reference (e.g. a failed
            // ringbuf reserve) is gone: drop it from the tracked set.
            if dst_state.ref_obj_id != 0 {
                null_state.release_ref(dst_state.ref_obj_id);
            }
            mark_ptr_or_null_regs(null_state, dst_state.id, true);
            mark_ptr_or_null_regs(nonnull_state, dst_state.id, false);
            return Ok(JumpOutcome::Both(Box::new(jump_state)));
        }

        // Register-to-register equality between pointers: nullness
        // propagation (the pass bug #1 corrupts).
        if let Some(r) = src_reg {
            if matches!(op, JmpOp::Jeq | JmpOp::Jne)
                && dst_state.typ.is_pointer()
                && src_state.typ.is_pointer()
            {
                return Ok(
                    self.nullness_propagation_jmp(state, pc, op, dst, dst_state, r, src_state)
                );
            }
        }

        // Any other pointer comparison: no refinement, both branches live.
        if dst_state.typ.is_pointer() && src_state.typ == RegType::Scalar && !zero_cmp {
            // Comparing a pointer against an arbitrary scalar leaks the
            // pointer value; the kernel allows it for privileged, learning
            // nothing.
            self.cov.hit(Cat::JmpRefine, 400, 0);
        }
        Ok(JumpOutcome::Both(Box::new(state.clone())))
    }

    /// The jump-equality nullness-propagation pass.
    ///
    /// For `if rX == rY` where both are pointers and exactly one is
    /// nullable: in the branch where they are equal, if the other pointer
    /// is known non-null, the nullable one must be non-null too — so the
    /// verifier clears its `maybe_null`.
    ///
    /// The *fixed* pass (Listing 3 of the paper) skips the propagation
    /// when the non-nullable side is a `PTR_TO_BTF_ID`, because such
    /// pointers are untracked-null: the type system calls them non-null
    /// but they may well be null at runtime. The **bug #1** variant omits
    /// that filter.
    #[allow(clippy::too_many_arguments)]
    fn nullness_propagation_jmp(
        &mut self,
        state: &mut VerifierState,
        _pc: usize,
        op: JmpOp,
        _dst: Reg,
        dst_state: RegState,
        _src: Reg,
        src_state: RegState,
    ) -> JumpOutcome {
        let (nullable, other) = if dst_state.maybe_null && !src_state.maybe_null {
            (dst_state, src_state)
        } else if src_state.maybe_null && !dst_state.maybe_null {
            (src_state, dst_state)
        } else {
            self.cov.hit(Cat::NullTrack, 2, 0);
            return JumpOutcome::Both(Box::new(state.clone()));
        };

        let other_is_btf = matches!(other.typ, RegType::PtrToBtfId { .. });
        let propagate = if self.has_bug(BugId::NullnessPropagation) {
            // Buggy: propagate for every pointer type.
            true
        } else {
            // Fixed: PTR_TO_BTF_ID comparisons teach us nothing.
            !other_is_btf
        };
        self.cov.hit(Cat::NullTrack, 3, propagate as u32);

        let mut jump_state = state.clone();
        if propagate {
            // Equal-path: the nullable pointer inherits the other's
            // non-nullness.
            let equal_state = if op == JmpOp::Jeq {
                &mut jump_state
            } else {
                &mut *state
            };
            equal_state.for_each_reg_with_id(nullable.id, |r| {
                r.maybe_null = false;
            });
        }
        JumpOutcome::Both(Box::new(jump_state))
    }

    /// `find_good_pkt_pointers`: comparisons between a packet pointer and
    /// `pkt_end` establish a verified accessible range.
    fn packet_range_jmp(
        &mut self,
        state: &mut VerifierState,
        op: JmpOp,
        _dst: Reg,
        dst_state: RegState,
        src_state: RegState,
    ) -> Option<JumpOutcome> {
        // Normalize to (pkt, op, pkt_end): `pkt < end`, `end > pkt`, etc.
        let (pkt, rel) = match (dst_state.typ, src_state.typ) {
            (RegType::PtrToPacket, RegType::PtrToPacketEnd) => (dst_state, op),
            (RegType::PtrToPacketEnd, RegType::PtrToPacket) => {
                let flipped = match op {
                    JmpOp::Jgt => JmpOp::Jlt,
                    JmpOp::Jge => JmpOp::Jle,
                    JmpOp::Jlt => JmpOp::Jgt,
                    JmpOp::Jle => JmpOp::Jge,
                    other => other,
                };
                (src_state, flipped)
            }
            _ => return None,
        };

        // The range is only derivable from a constant-offset pointer.
        if !pkt.has_const_offset() || pkt.id == 0 {
            return None;
        }
        // `pkt <= end` (or <): in the true branch, everything below the
        // pointer's current fixed offset is accessible.
        let range = pkt.off.clamp(0, u16::MAX as i32) as u16;
        let mut jump_state = state.clone();
        match rel {
            JmpOp::Jle | JmpOp::Jlt => {
                // True (jump) branch: pkt+off is within packet.
                jump_state.for_each_reg_with_id(pkt.id, |r| {
                    if r.typ == RegType::PtrToPacket {
                        r.pkt_range = r.pkt_range.max(range);
                    }
                });
                self.cov.hit(Cat::PktRange, (range as u32).min(64), 1);
            }
            JmpOp::Jgt | JmpOp::Jge => {
                // False (fallthrough) branch is the safe one.
                state.for_each_reg_with_id(pkt.id, |r| {
                    if r.typ == RegType::PtrToPacket {
                        r.pkt_range = r.pkt_range.max(range);
                    }
                });
                self.cov.hit(Cat::PktRange, (range as u32).min(64), 2);
            }
            _ => return Some(JumpOutcome::Both(Box::new(jump_state))),
        }
        Some(JumpOutcome::Both(Box::new(jump_state)))
    }
}

/// The kernel's `find_equal_scalars` (renamed `sync_linked_regs` in
/// 6.12): copies a refined scalar state to every register sharing its
/// link id (established by 64-bit scalar moves). A no-op for unlinked
/// (`id == 0`) or non-scalar refinements.
pub fn sync_linked_regs(state: &mut VerifierState, refined: &RegState) {
    if refined.id == 0 || refined.typ != RegType::Scalar {
        return;
    }
    state.for_each_reg_with_id(refined.id, |r| {
        if r.typ == RegType::Scalar {
            *r = *refined;
        }
    });
}

/// Resolves `mark_ptr_or_null_regs`: all registers sharing `id` become a
/// known-zero scalar (null branch) or lose `maybe_null` (non-null branch).
fn mark_ptr_or_null_regs(state: &mut VerifierState, id: u32, is_null: bool) {
    state.for_each_reg_with_id(id, |r| {
        if is_null {
            *r = RegState::known_scalar(0);
        } else {
            r.maybe_null = false;
        }
    });
}

/// `is_branch_taken`: decides a comparison when the ranges do not overlap
/// or the values are known. Returns `None` when both outcomes are possible.
pub(crate) fn branch_taken(op: JmpOp, is32: bool, dst: &RegState, src: &RegState) -> Option<bool> {
    let (dumin, dumax, dsmin, dsmax) = if is32 {
        (
            dst.u32_min as u64,
            dst.u32_max as u64,
            dst.s32_min as i64,
            dst.s32_max as i64,
        )
    } else {
        (dst.umin, dst.umax, dst.smin, dst.smax)
    };
    let (sumin, sumax, ssmin, ssmax) = if is32 {
        (
            src.u32_min as u64,
            src.u32_max as u64,
            src.s32_min as i64,
            src.s32_max as i64,
        )
    } else {
        (src.umin, src.umax, src.smin, src.smax)
    };

    match op {
        JmpOp::Jeq => {
            if dumin == dumax && sumin == sumax && dumin == sumin && dsmin == dsmax {
                Some(true)
            } else if dumax < sumin || dumin > sumax || dsmax < ssmin || dsmin > ssmax {
                Some(false)
            } else {
                None
            }
        }
        JmpOp::Jne => branch_taken(JmpOp::Jeq, is32, dst, src).map(|t| !t),
        JmpOp::Jgt => {
            if dumin > sumax {
                Some(true)
            } else if dumax <= sumin {
                Some(false)
            } else {
                None
            }
        }
        JmpOp::Jge => {
            if dumin >= sumax {
                Some(true)
            } else if dumax < sumin {
                Some(false)
            } else {
                None
            }
        }
        JmpOp::Jlt => branch_taken(JmpOp::Jge, is32, dst, src).map(|t| !t),
        JmpOp::Jle => branch_taken(JmpOp::Jgt, is32, dst, src).map(|t| !t),
        JmpOp::Jsgt => {
            if dsmin > ssmax {
                Some(true)
            } else if dsmax <= ssmin {
                Some(false)
            } else {
                None
            }
        }
        JmpOp::Jsge => {
            if dsmin >= ssmax {
                Some(true)
            } else if dsmax < ssmin {
                Some(false)
            } else {
                None
            }
        }
        JmpOp::Jslt => branch_taken(JmpOp::Jsge, is32, dst, src).map(|t| !t),
        JmpOp::Jsle => branch_taken(JmpOp::Jsgt, is32, dst, src).map(|t| !t),
        JmpOp::Jset => {
            // dst & src != 0?
            if let (Some(d), Some(s)) = (dst.const_value(), src.const_value()) {
                let (d, s) = if is32 {
                    (d as u32 as u64, s as u32 as u64)
                } else {
                    (d, s)
                };
                Some(d & s != 0)
            } else {
                None
            }
        }
        JmpOp::Ja | JmpOp::Call | JmpOp::Exit => None,
    }
}

/// `reg_set_min_max`: refines both operand registers for the chosen
/// branch direction of a comparison.
///
/// Soundness contract (property-tested in `tests/prop_jump.rs`): for
/// concrete members `x ∈ γ(dst)`, `y ∈ γ(src)` with `x op y`
/// evaluating to `taken`, the refined states must still admit `x` and
/// `y` — refinement narrows the abstraction only along the branch
/// actually taken.
pub fn reg_set_min_max(op: JmpOp, is32: bool, taken: bool, dst: &mut RegState, src: &mut RegState) {
    // Translate (op, taken=false) into the complementary relation so the
    // refinement below only handles "relation holds".
    let rel = if taken {
        op
    } else {
        match op {
            JmpOp::Jeq => JmpOp::Jne,
            JmpOp::Jne => JmpOp::Jeq,
            JmpOp::Jgt => JmpOp::Jle,
            JmpOp::Jge => JmpOp::Jlt,
            JmpOp::Jlt => JmpOp::Jge,
            JmpOp::Jle => JmpOp::Jgt,
            JmpOp::Jsgt => JmpOp::Jsle,
            JmpOp::Jsge => JmpOp::Jslt,
            JmpOp::Jslt => JmpOp::Jsge,
            JmpOp::Jsle => JmpOp::Jsgt,
            other => other,
        }
    };

    match rel {
        JmpOp::Jeq => {
            // Both now describe the same value: intersect knowledge.
            if is32 {
                let lo = dst.u32_min.max(src.u32_min);
                let hi = dst.u32_max.min(src.u32_max);
                if lo <= hi {
                    dst.u32_min = lo;
                    src.u32_min = lo;
                    dst.u32_max = hi;
                    src.u32_max = hi;
                }
                let var = dst.var_off.subreg().intersect(src.var_off.subreg());
                dst.var_off = dst.var_off.with_subreg(var);
                src.var_off = src.var_off.with_subreg(var);
            } else {
                let lo = dst.umin.max(src.umin);
                let hi = dst.umax.min(src.umax);
                if lo <= hi {
                    dst.umin = lo;
                    src.umin = lo;
                    dst.umax = hi;
                    src.umax = hi;
                }
                let slo = dst.smin.max(src.smin);
                let shi = dst.smax.min(src.smax);
                if slo <= shi {
                    dst.smin = slo;
                    src.smin = slo;
                    dst.smax = shi;
                    src.smax = shi;
                }
                let var = dst.var_off.intersect(src.var_off);
                dst.var_off = var;
                src.var_off = var;
            }
        }
        JmpOp::Jne => {
            // Only useful when one side is a constant at a range edge.
            if let Some(c) = src.const_value() {
                if is32 {
                    let c = c as u32;
                    if dst.u32_min == c && dst.u32_min < u32::MAX {
                        dst.u32_min += 1;
                    } else if dst.u32_max == c && dst.u32_max > 0 {
                        dst.u32_max -= 1;
                    }
                } else if dst.umin == c && dst.umin < u64::MAX {
                    dst.umin += 1;
                } else if dst.umax == c && dst.umax > 0 {
                    dst.umax -= 1;
                }
            }
        }
        JmpOp::Jgt => {
            if is32 {
                dst.u32_min = dst.u32_min.max(src.u32_min.saturating_add(1));
                src.u32_max = src.u32_max.min(dst.u32_max.saturating_sub(1));
            } else {
                dst.umin = dst.umin.max(src.umin.saturating_add(1));
                src.umax = src.umax.min(dst.umax.saturating_sub(1));
            }
        }
        JmpOp::Jge => {
            if is32 {
                dst.u32_min = dst.u32_min.max(src.u32_min);
                src.u32_max = src.u32_max.min(dst.u32_max);
            } else {
                dst.umin = dst.umin.max(src.umin);
                src.umax = src.umax.min(dst.umax);
            }
        }
        JmpOp::Jlt => {
            if is32 {
                dst.u32_max = dst.u32_max.min(src.u32_max.saturating_sub(1));
                src.u32_min = src.u32_min.max(dst.u32_min.saturating_add(1));
            } else {
                dst.umax = dst.umax.min(src.umax.saturating_sub(1));
                src.umin = src.umin.max(dst.umin.saturating_add(1));
            }
        }
        JmpOp::Jle => {
            if is32 {
                dst.u32_max = dst.u32_max.min(src.u32_max);
                src.u32_min = src.u32_min.max(dst.u32_min);
            } else {
                dst.umax = dst.umax.min(src.umax);
                src.umin = src.umin.max(dst.umin);
            }
        }
        JmpOp::Jsgt => {
            if is32 {
                dst.s32_min = dst.s32_min.max(src.s32_min.saturating_add(1));
                src.s32_max = src.s32_max.min(dst.s32_max.saturating_sub(1));
            } else {
                dst.smin = dst.smin.max(src.smin.saturating_add(1));
                src.smax = src.smax.min(dst.smax.saturating_sub(1));
            }
        }
        JmpOp::Jsge => {
            if is32 {
                dst.s32_min = dst.s32_min.max(src.s32_min);
                src.s32_max = src.s32_max.min(dst.s32_max);
            } else {
                dst.smin = dst.smin.max(src.smin);
                src.smax = src.smax.min(dst.smax);
            }
        }
        JmpOp::Jslt => {
            if is32 {
                dst.s32_max = dst.s32_max.min(src.s32_max.saturating_sub(1));
                src.s32_min = src.s32_min.max(dst.s32_min.saturating_add(1));
            } else {
                dst.smax = dst.smax.min(src.smax.saturating_sub(1));
                src.smin = src.smin.max(dst.smin.saturating_add(1));
            }
        }
        JmpOp::Jsle => {
            if is32 {
                dst.s32_max = dst.s32_max.min(src.s32_max);
                src.s32_min = src.s32_min.max(dst.s32_min);
            } else {
                dst.smax = dst.smax.min(src.smax);
                src.smin = src.smin.max(dst.smin);
            }
        }
        JmpOp::Jset | JmpOp::Ja | JmpOp::Call | JmpOp::Exit => {}
    }

    for r in [dst, src] {
        if !r.bounds_sane() {
            // Contradictory branch: dead in practice; widen to stay sound.
            r.mark_unbounded();
        }
        if r.typ == RegType::Scalar {
            r.normalize();
            // When the upper 32 bits are known zero, a 32-bit refinement
            // bounds the 64-bit value too (`__reg_combine_32_into_64`).
            let hi = r.var_off.clear_subreg();
            if hi.is_const() && hi.value == 0 {
                r.umin = r.umin.max(r.u32_min as u64);
                r.umax = r.umax.min(r.u32_max as u64);
                if r.umin > r.umax {
                    r.umin = r.u32_min as u64;
                    r.umax = r.u32_max as u64;
                }
                r.normalize();
            }
        }
    }
}
