//! Helper and kfunc call checking (`check_helper_call` /
//! `check_kfunc_call`).
//!
//! Every argument register is validated against the callee's prototype;
//! the return register is retyped; references are acquired/released; and
//! two injected defects live here: the missing NMI restriction on
//! `bpf_send_signal` (bug #6) and the stale return-state handling for
//! kfunc calls (bug #3).

use bvf_isa::{Reg, Size};
use bvf_kernel_sim::helpers::kfunc::{kfunc_desc, KfuncArg, KfuncRet};
use bvf_kernel_sim::helpers::proto::{helper_proto, ArgType, FuncProto, RetType};
use bvf_kernel_sim::BugId;

use crate::check::mem::AccessKind;
use crate::cov::Cat;
use crate::env::Verifier;
use crate::errors::{RejectReason, VerifierError};
use crate::state::VerifierState;
use crate::types::{RegState, RegType};

const ARG_REGS: [Reg; 5] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5];

impl<'a> Verifier<'a> {
    /// Checks a helper call instruction.
    pub(crate) fn check_helper_call(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        helper_id: i32,
    ) -> Result<(), VerifierError> {
        if helper_id < 0 {
            self.cov.hit(Cat::Error, 240, 0);
            return Err(VerifierError::invalid(
                RejectReason::HelperInvalid,
                pc,
                "invalid helper id",
            ));
        }
        let id = helper_id as u32;
        let Some(proto) = helper_proto(id) else {
            self.cov.hit(Cat::Error, 241, id.min(512));
            return Err(VerifierError::invalid(
                RejectReason::HelperInvalid,
                pc,
                format!("invalid func unknown#{id}"),
            ));
        };
        if !self.opts.version.helper_available(id) {
            self.cov.hit(Cat::Error, 242, id);
            return Err(VerifierError::invalid(
                RejectReason::HelperInvalid,
                pc,
                format!(
                    "helper {} not available in {}",
                    proto.name,
                    self.opts.version.name()
                ),
            ));
        }
        if !proto.allowed_for(self.prog_type) {
            self.cov.hit(Cat::Error, 243, id);
            return Err(VerifierError::invalid(
                RejectReason::HelperInvalid,
                pc,
                format!(
                    "unknown func {} for program type {:?}",
                    proto.name, self.prog_type
                ),
            ));
        }
        // Bug #6 site: the fixed verifier refuses NMI-unsafe helpers in
        // programs that can run in NMI context.
        if proto.nmi_unsafe && self.prog_type.runs_in_nmi() && !self.has_bug(BugId::SignalSendPanic)
        {
            self.cov.hit(Cat::Error, 244, id);
            return Err(VerifierError::invalid(
                RejectReason::HelperInvalid,
                pc,
                format!("helper {} not allowed in NMI program types", proto.name),
            ));
        }

        // Validate arguments left to right, remembering the map argument
        // for key/value size resolution.
        let mut map_id: Option<u32> = None;
        let mut sizes: [Option<u64>; 5] = [None; 5];
        for (i, arg) in proto.args.iter().enumerate() {
            let Some(arg) = arg else { break };
            let reg = ARG_REGS[i];
            self.cov.hit(Cat::HelperArg, id, i as u32);
            self.check_helper_arg(state, pc, &proto, *arg, reg, i, &mut map_id, &mut sizes)?;
        }

        // Reference release, if declared.
        if let Some(ref_arg) = proto.releases_ref_arg {
            let ref_id = state.cur().reg(ARG_REGS[ref_arg]).ref_obj_id;
            self.cov.hit(Cat::RefTrack, id, 1);
            if ref_id == 0 || !state.release_ref(ref_id) {
                self.cov.hit(Cat::Error, 245, 0);
                return Err(VerifierError::invalid(
                    RejectReason::InvalidRefRelease,
                    pc,
                    format!("release of unowned reference in {}", proto.name),
                ));
            }
        }

        // Clobber caller-saved registers, then install the return value.
        state.cur_mut().clobber_caller_saved();
        let r0 = self.helper_ret_state(state, pc, &proto, map_id, &sizes)?;
        *state.cur_mut().reg_mut(Reg::R0) = r0;
        self.used_helpers.insert(id);
        self.cov.hit(Cat::HelperOk, id, 0);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn check_helper_arg(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        proto: &FuncProto,
        arg: ArgType,
        reg: Reg,
        arg_idx: usize,
        map_id: &mut Option<u32>,
        sizes: &mut [Option<u64>; 5],
    ) -> Result<(), VerifierError> {
        self.check_reg_init(state, reg, pc)?;
        let r = *state.cur().reg(reg);
        if r.maybe_null && !matches!(arg, ArgType::Anything) {
            self.cov.hit(Cat::Error, 246, 0);
            return Err(VerifierError::access(
                RejectReason::HelperArgTypeMismatch,
                pc,
                format!(
                    "R{} type={}_or_null expected valid pointer for {}",
                    reg.as_u8(),
                    r.typ.name(),
                    proto.name
                ),
            )
            .with_reg(reg.as_u8()));
        }
        match arg {
            ArgType::Anything => Ok(()),
            ArgType::ConstMapPtr(required_type) => match r.typ {
                RegType::ConstPtrToMap { map_id: m } => {
                    if let Some(rt) = required_type {
                        let actual = self.kernel.maps.get(m).map(|mp| mp.def.map_type);
                        if actual != Some(rt) {
                            self.cov.hit(Cat::Error, 247, 0);
                            return Err(VerifierError::invalid(
                                RejectReason::HelperArgTypeMismatch,
                                pc,
                                format!("{} requires a {:?} map", proto.name, rt),
                            )
                            .with_reg(reg.as_u8()));
                        }
                    }
                    *map_id = Some(m);
                    Ok(())
                }
                _ => {
                    self.cov.hit(Cat::Error, 248, 0);
                    Err(VerifierError::access(
                        RejectReason::HelperArgTypeMismatch,
                        pc,
                        format!(
                            "R{} type={} expected=map_ptr in {}",
                            reg.as_u8(),
                            r.typ.name(),
                            proto.name
                        ),
                    )
                    .with_reg(reg.as_u8()))
                }
            },
            ArgType::PtrToMapKey => {
                let key_size = map_id
                    .and_then(|m| self.kernel.maps.get(m))
                    .map(|m| m.def.key_size)
                    .ok_or_else(|| {
                        VerifierError::invalid(
                            RejectReason::HelperArgTypeMismatch,
                            pc,
                            "map argument missing",
                        )
                    })?;
                self.check_mem_region(state, pc, reg, key_size as u64, AccessKind::Read)
            }
            ArgType::PtrToMapValue => {
                let value_size = map_id
                    .and_then(|m| self.kernel.maps.get(m))
                    .map(|m| m.def.value_size)
                    .ok_or_else(|| {
                        VerifierError::invalid(
                            RejectReason::HelperArgTypeMismatch,
                            pc,
                            "map argument missing",
                        )
                    })?;
                self.check_mem_region(state, pc, reg, value_size as u64, AccessKind::Read)
            }
            ArgType::ConstSize { allow_zero } => {
                if r.typ != RegType::Scalar {
                    self.cov.hit(Cat::Error, 249, 0);
                    return Err(VerifierError::access(
                        RejectReason::HelperArgTypeMismatch,
                        pc,
                        format!("R{} expected size scalar", reg.as_u8()),
                    )
                    .with_reg(reg.as_u8()));
                }
                let min = r.umin;
                let max = r.umax;
                if (!allow_zero && min == 0) || max > 1 << 20 {
                    self.cov.hit(Cat::Error, 250, 0);
                    return Err(VerifierError::access(
                        RejectReason::HelperArgBadRange,
                        pc,
                        format!("R{} invalid size bounds [{min}, {max}]", reg.as_u8()),
                    )
                    .with_reg(reg.as_u8()));
                }
                sizes[arg_idx] = Some(max);
                Ok(())
            }
            ArgType::PtrToMem { size_arg } | ArgType::PtrToUninitMem { size_arg } => {
                // The size argument is validated after (kernel pairs them
                // mem-then-size); peek at the size register's bounds now.
                let size_reg = ARG_REGS[size_arg];
                let size_state = *state.cur().reg(size_reg);
                if size_state.typ != RegType::Scalar {
                    self.cov.hit(Cat::Error, 251, 0);
                    return Err(VerifierError::access(
                        RejectReason::HelperArgTypeMismatch,
                        pc,
                        format!("R{} expected size scalar", size_reg.as_u8()),
                    )
                    .with_reg(size_reg.as_u8()));
                }
                let needed = size_state.umax;
                if needed > 1 << 20 {
                    self.cov.hit(Cat::Error, 252, 0);
                    return Err(VerifierError::access(
                        RejectReason::HelperArgBadRange,
                        pc,
                        "unbounded memory size",
                    ));
                }
                let kind = if matches!(arg, ArgType::PtrToUninitMem { .. }) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                self.check_mem_region(state, pc, reg, needed, kind)
            }
            ArgType::PtrToCtx => {
                if r.typ != RegType::PtrToCtx || r.off != 0 {
                    self.cov.hit(Cat::Error, 253, 0);
                    return Err(VerifierError::access(
                        RejectReason::HelperArgTypeMismatch,
                        pc,
                        format!(
                            "R{} type={} expected=ctx in {}",
                            reg.as_u8(),
                            r.typ.name(),
                            proto.name
                        ),
                    )
                    .with_reg(reg.as_u8()));
                }
                Ok(())
            }
            ArgType::PtrToBtfId(expected) => match r.typ {
                RegType::PtrToBtfId { btf_id } if btf_id == expected && r.off == 0 => Ok(()),
                _ => {
                    self.cov.hit(Cat::Error, 254, 0);
                    Err(VerifierError::access(
                        RejectReason::HelperArgTypeMismatch,
                        pc,
                        format!(
                            "R{} type={} expected=ptr_to_btf_id in {}",
                            reg.as_u8(),
                            r.typ.name(),
                            proto.name
                        ),
                    )
                    .with_reg(reg.as_u8()))
                }
            },
            ArgType::PtrToAllocMem => match r.typ {
                RegType::PtrToMem { alloc: true, .. } if r.ref_obj_id != 0 => Ok(()),
                _ => {
                    self.cov.hit(Cat::Error, 255, 0);
                    Err(VerifierError::access(
                        RejectReason::HelperArgTypeMismatch,
                        pc,
                        format!(
                            "R{} type={} expected=alloc_mem in {}",
                            reg.as_u8(),
                            r.typ.name(),
                            proto.name
                        ),
                    )
                    .with_reg(reg.as_u8()))
                }
            },
        }
    }

    /// Validates that `size` bytes through the pointer in `reg` are
    /// readable (or writable); a multi-purpose `check_helper_mem_access`.
    pub(crate) fn check_mem_region(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        reg: Reg,
        size: u64,
        kind: AccessKind,
    ) -> Result<(), VerifierError> {
        if size == 0 {
            return Ok(());
        }
        let r = *state.cur().reg(reg);
        match r.typ {
            RegType::PtrToStack => {
                // The region is [off, off+size); every byte must be valid
                // stack and (for reads) initialized.
                if !r.has_const_offset() {
                    self.cov.hit(Cat::Error, 256, 0);
                    return Err(VerifierError::access(
                        RejectReason::StackOobAccess,
                        pc,
                        "variable stack access prohibited",
                    )
                    .with_reg(reg.as_u8()));
                }
                let base_off = r.off as i64 + r.var_off.value as i64;
                if base_off >= 0
                    || base_off < -(bvf_isa::reg::STACK_SIZE as i64)
                    || base_off + size as i64 > 0
                {
                    self.cov.hit(Cat::Error, 257, 0);
                    return Err(VerifierError::access(
                        RejectReason::StackOobAccess,
                        pc,
                        format!("invalid indirect access to stack off={base_off} size={size}"),
                    )
                    .with_reg(reg.as_u8())
                    .with_stack_off(base_off as i32));
                }
                // Check/mark byte by byte through the regular stack path
                // (the relative offset composes with the pointer's own
                // offset inside check_access).
                for i in 0..size {
                    self.check_access(state, pc, reg, i as i16, Size::B, kind)?;
                }
                Ok(())
            }
            RegType::PtrToMapValue { map_id } => {
                let vs = self
                    .kernel
                    .maps
                    .get(map_id)
                    .map(|m| m.def.value_size as i64)
                    .unwrap_or(0);
                let lo = r.off as i64 + if r.has_const_offset() { 0 } else { r.smin };
                let hi = r.off as i64
                    + if r.has_const_offset() {
                        0
                    } else {
                        r.umax as i64
                    }
                    + size as i64;
                if lo < 0 || hi > vs {
                    self.cov.hit(Cat::Error, 258, 0);
                    return Err(VerifierError::access(
                        RejectReason::HelperArgBadRange,
                        pc,
                        format!("invalid indirect access to map value off={lo} size={size}"),
                    )
                    .with_reg(reg.as_u8()));
                }
                Ok(())
            }
            RegType::PtrToMem { size: ms, .. } => {
                let lo = r.off as i64;
                let hi = r.off as i64 + size as i64;
                if lo < 0 || hi > ms as i64 || !r.has_const_offset() {
                    self.cov.hit(Cat::Error, 259, 0);
                    return Err(VerifierError::access(
                        RejectReason::HelperArgBadRange,
                        pc,
                        format!("invalid indirect access to mem off={lo} size={size}"),
                    )
                    .with_reg(reg.as_u8()));
                }
                Ok(())
            }
            _ => {
                self.cov.hit(Cat::Error, 260, 0);
                Err(VerifierError::access(
                    RejectReason::HelperArgTypeMismatch,
                    pc,
                    format!("R{} type={} expected=mem region", reg.as_u8(), r.typ.name()),
                )
                .with_reg(reg.as_u8()))
            }
        }
    }

    fn helper_ret_state(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        proto: &FuncProto,
        map_id: Option<u32>,
        sizes: &[Option<u64>; 5],
    ) -> Result<RegState, VerifierError> {
        Ok(match proto.ret {
            RetType::Integer | RetType::Void => RegState::unknown_scalar(),
            RetType::PtrToMapValueOrNull => {
                let map_id = map_id.ok_or_else(|| {
                    VerifierError::invalid(
                        RejectReason::HelperArgTypeMismatch,
                        pc,
                        "map argument missing for ret",
                    )
                })?;
                let mut r = RegState::pointer(RegType::PtrToMapValue { map_id });
                r.maybe_null = true;
                r.id = self.new_id();
                r
            }
            RetType::PtrToBtfId(btf_id) => RegState::pointer(RegType::PtrToBtfId { btf_id }),
            RetType::PtrToAllocMemOrNull { size_arg } => {
                let size = sizes[size_arg].unwrap_or(0) as u32;
                let mut r = RegState::pointer(RegType::PtrToMem { size, alloc: true });
                r.maybe_null = true;
                r.id = self.new_id();
                if proto.acquires_ref {
                    let ref_id = state.acquire_ref(&mut self.next_id, pc);
                    r.ref_obj_id = ref_id;
                    self.cov.hit(Cat::RefTrack, proto.id, 0);
                }
                r
            }
        })
    }

    /// Checks a kfunc call instruction.
    pub(crate) fn check_kfunc_call(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        kfunc_id: i32,
    ) -> Result<(), VerifierError> {
        if !self.opts.version.has_kfuncs() {
            self.cov.hit(Cat::Error, 261, 0);
            return Err(VerifierError::invalid(
                RejectReason::KfuncInvalid,
                pc,
                format!("kfunc calls not supported in {}", self.opts.version.name()),
            ));
        }
        let Some(desc) = kfunc_desc(kfunc_id as u32) else {
            self.cov.hit(Cat::Error, 262, (kfunc_id as u32).min(64));
            return Err(VerifierError::invalid(
                RejectReason::KfuncInvalid,
                pc,
                format!("kernel btf_id {kfunc_id} is not a kernel function"),
            ));
        };
        self.cov.hit(Cat::Kfunc, desc.id, 0);

        let mut released = false;
        for (i, arg) in desc.args.iter().enumerate() {
            let reg = ARG_REGS[i];
            self.check_reg_init(state, reg, pc)?;
            let r = *state.cur().reg(reg);
            match arg {
                KfuncArg::Scalar => {
                    if r.typ != RegType::Scalar {
                        self.cov.hit(Cat::Error, 263, 0);
                        return Err(VerifierError::access(
                            RejectReason::HelperArgTypeMismatch,
                            pc,
                            format!("R{} expected scalar for {}", reg.as_u8(), desc.name),
                        )
                        .with_reg(reg.as_u8()));
                    }
                }
                KfuncArg::PtrToBtfId(expected) => match r.typ {
                    RegType::PtrToBtfId { btf_id } if btf_id == *expected && !r.maybe_null => {
                        if desc.releases_ref {
                            if r.ref_obj_id == 0 || !state.release_ref(r.ref_obj_id) {
                                self.cov.hit(Cat::Error, 264, 0);
                                return Err(VerifierError::invalid(
                                    RejectReason::InvalidRefRelease,
                                    pc,
                                    format!("release of unowned reference in {}", desc.name),
                                ));
                            }
                            released = true;
                        }
                    }
                    _ => {
                        self.cov.hit(Cat::Error, 265, 0);
                        return Err(VerifierError::access(
                            RejectReason::HelperArgTypeMismatch,
                            pc,
                            format!(
                                "R{} type={} expected trusted btf ptr for {}",
                                reg.as_u8(),
                                r.typ.name(),
                                desc.name
                            ),
                        )
                        .with_reg(reg.as_u8()));
                    }
                },
            }
        }
        let _ = released;

        let old_r0 = *state.cur().reg(Reg::R0);
        state.cur_mut().clobber_caller_saved();
        let r0 = match desc.ret {
            KfuncRet::Void => RegState::unknown_scalar(),
            KfuncRet::Scalar => {
                if self.has_bug(BugId::KfuncBacktrack) && old_r0.typ == RegType::Scalar {
                    // Bug #3: the kfunc-call handling fails to reset the
                    // return register's tracked state, so stale bounds
                    // from before the call survive into later checks
                    // (the paper's verifier backtracking defect).
                    self.cov.hit(Cat::Kfunc, desc.id, 9);
                    old_r0
                } else {
                    RegState::unknown_scalar()
                }
            }
            KfuncRet::BoundedScalar { max } => {
                let mut r = RegState::unknown_scalar();
                r.umin = 0;
                r.umax = max;
                r.normalize();
                r
            }
            KfuncRet::PtrToBtfId(btf_id) => {
                let mut r = RegState::pointer(RegType::PtrToBtfId { btf_id });
                if desc.acquires_ref {
                    r.ref_obj_id = state.acquire_ref(&mut self.next_id, pc);
                    self.cov.hit(Cat::RefTrack, 1000 + desc.id, 0);
                }
                r
            }
        };
        *state.cur_mut().reg_mut(Reg::R0) = r0;
        self.used_kfuncs.insert(desc.id);
        Ok(())
    }
}
