//! ALU instruction checking: scalar bounds tracking and pointer
//! arithmetic (`adjust_scalar_min_max_vals` / `adjust_ptr_min_max_vals`).

use bvf_isa::{AluOp, Endianness, InsnKind, Reg};
use bvf_kernel_sim::BugId;

use crate::cov::Cat;
use crate::env::{AluLimitMeta, Verifier};
use crate::errors::{RejectReason, VerifierError};
use crate::state::VerifierState;
use crate::tnum::Tnum;
use crate::types::{RegState, RegType};

/// A resolved ALU source operand: either a register snapshot or an
/// immediate lifted to a known scalar.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SrcOperand {
    pub reg: RegState,
    /// The source register, when the operand came from one.
    pub src_reg: Option<Reg>,
}

impl<'a> Verifier<'a> {
    /// Merges an `alu_limit` candidate for instruction `pc` with what
    /// other paths recorded; see `alu_limit_state`.
    pub(crate) fn merge_alu_limit(
        &mut self,
        pc: usize,
        candidate: Option<crate::env::AluLimitMeta>,
    ) {
        use std::collections::hash_map::Entry;
        match self.alu_limit_state.entry(pc) {
            Entry::Vacant(v) => {
                v.insert(candidate);
            }
            Entry::Occupied(mut o) => {
                let merged = match (*o.get(), candidate) {
                    (Some(a), Some(b))
                        if a.scalar_reg == b.scalar_reg && a.downward == b.downward =>
                    {
                        Some(crate::env::AluLimitMeta {
                            limit: a.limit.max(b.limit),
                            ..a
                        })
                    }
                    _ => None,
                };
                o.insert(merged);
            }
        }
    }

    /// Checks one ALU-class instruction.
    pub(crate) fn check_alu(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        kind: &InsnKind,
    ) -> Result<(), VerifierError> {
        match *kind {
            InsnKind::AluReg {
                op, is64, dst, src, ..
            } => {
                self.cov.hit(Cat::AluOp, op as u32, is64 as u32);
                self.check_reg_init(state, src, pc)?;
                if op == AluOp::Mov {
                    // `sync_linked_regs` linkage: a 64-bit scalar move
                    // makes both registers refer to the same value; give
                    // them a shared id so later range refinements apply
                    // to both.
                    if is64
                        && state.cur().reg(src).typ == RegType::Scalar
                        && state.cur().reg(src).id == 0
                    {
                        let id = self.new_id();
                        state.cur_mut().reg_mut(src).id = id;
                    }
                    let src_state = *state.cur().reg(src);
                    return self.do_mov(
                        state,
                        pc,
                        dst,
                        SrcOperand {
                            reg: src_state,
                            src_reg: Some(src),
                        },
                        is64,
                    );
                }
                let src_state = *state.cur().reg(src);
                self.check_reg_init(state, dst, pc)?;
                self.do_binary_alu(
                    state,
                    pc,
                    op,
                    dst,
                    SrcOperand {
                        reg: src_state,
                        src_reg: Some(src),
                    },
                    is64,
                )
            }
            InsnKind::AluImm {
                op, is64, dst, imm, ..
            } => {
                self.cov.hit(Cat::AluOp, op as u32, 2 + is64 as u32);
                let imm_reg = if is64 {
                    RegState::known_scalar(imm as i64 as u64)
                } else {
                    RegState::known_scalar(imm as u32 as u64)
                };
                if op == AluOp::Mov {
                    return self.do_mov(
                        state,
                        pc,
                        dst,
                        SrcOperand {
                            reg: imm_reg,
                            src_reg: None,
                        },
                        is64,
                    );
                }
                self.check_reg_init(state, dst, pc)?;
                if matches!(op, AluOp::Div | AluOp::Mod) && imm == 0 {
                    self.cov.hit(Cat::Error, 100, 0);
                    return Err(VerifierError::invalid(
                        RejectReason::DivByZeroPath,
                        pc,
                        "division by zero",
                    ));
                }
                if matches!(op, AluOp::Lsh | AluOp::Rsh | AluOp::Arsh) {
                    let width = if is64 { 64 } else { 32 };
                    if imm < 0 || imm >= width {
                        self.cov.hit(Cat::Error, 101, 0);
                        return Err(VerifierError::invalid(
                            RejectReason::InvalidShift,
                            pc,
                            format!("invalid shift {imm}"),
                        ));
                    }
                }
                self.do_binary_alu(
                    state,
                    pc,
                    op,
                    dst,
                    SrcOperand {
                        reg: imm_reg,
                        src_reg: None,
                    },
                    is64,
                )
            }
            InsnKind::Neg { is64, dst } => {
                self.cov.hit(Cat::AluOp, AluOp::Neg as u32, is64 as u32);
                self.check_reg_init(state, dst, pc)?;
                let r = state.cur().reg(dst);
                if r.typ.is_pointer() {
                    self.cov.hit(Cat::Error, 102, 0);
                    return Err(VerifierError::access(
                        RejectReason::PtrArithForbidden,
                        pc,
                        format!("R{} pointer arithmetic with neg prohibited", dst.as_u8()),
                    )
                    .with_reg(dst.as_u8()));
                }
                let out = match r.const_value() {
                    Some(v) => {
                        let neg = v.wrapping_neg();
                        RegState::known_scalar(if is64 { neg } else { neg as u32 as u64 })
                    }
                    None => RegState::unknown_scalar(),
                };
                *state.cur_mut().reg_mut(dst) = out;
                Ok(())
            }
            InsnKind::Endian {
                endianness,
                bits,
                dst,
            } => {
                self.cov.hit(Cat::AluOp, AluOp::End as u32, bits as u32);
                self.check_reg_init(state, dst, pc)?;
                let r = state.cur().reg(dst);
                if r.typ.is_pointer() {
                    self.cov.hit(Cat::Error, 103, 0);
                    return Err(VerifierError::access(
                        RejectReason::PtrArithForbidden,
                        pc,
                        format!("R{} byte swap on pointer prohibited", dst.as_u8()),
                    )
                    .with_reg(dst.as_u8()));
                }
                // Byte swaps scramble bounds; keep only constants. The
                // fold must match the runtime exactly: on a little-endian
                // host `to_le` only truncates to the operand size, while
                // `to_be` and the unconditional `bswap` swap bytes.
                let out = match r.const_value() {
                    Some(v) => {
                        let folded = match endianness {
                            Endianness::Le => match bits {
                                16 => v as u16 as u64,
                                32 => v as u32 as u64,
                                _ => v,
                            },
                            Endianness::Be | Endianness::Swap => match bits {
                                16 => (v as u16).swap_bytes() as u64,
                                32 => (v as u32).swap_bytes() as u64,
                                _ => v.swap_bytes(),
                            },
                        };
                        RegState::known_scalar(folded)
                    }
                    None => RegState::unknown_scalar(),
                };
                *state.cur_mut().reg_mut(dst) = out;
                Ok(())
            }
            _ => unreachable!("non-ALU instruction routed to check_alu"),
        }
    }

    /// Ensures a register has been initialized before reading.
    pub(crate) fn check_reg_init(
        &mut self,
        state: &VerifierState,
        reg: Reg,
        pc: usize,
    ) -> Result<(), VerifierError> {
        if state.cur().reg(reg).typ == RegType::NotInit {
            self.cov.hit(Cat::Error, 104, reg.as_u8() as u32);
            return Err(VerifierError::access(
                RejectReason::UninitRegRead,
                pc,
                format!("R{} !read_ok", reg.as_u8()),
            )
            .with_reg(reg.as_u8()));
        }
        Ok(())
    }

    fn do_mov(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        dst: Reg,
        src: SrcOperand,
        is64: bool,
    ) -> Result<(), VerifierError> {
        if src.reg.typ == RegType::NotInit {
            self.cov.hit(Cat::Error, 104, 0);
            return Err(VerifierError::access(
                RejectReason::UninitRegRead,
                pc,
                "mov from uninitialized register",
            ));
        }
        let mut out = src.reg;
        if !is64 {
            if out.typ.is_pointer() {
                if self.opts.unprivileged {
                    self.cov.hit(Cat::Error, 120, 0);
                    return Err(VerifierError::access(
                        RejectReason::UnprivPtrOp,
                        pc,
                        format!("R{} partial copy of pointer", dst.as_u8()),
                    )
                    .with_reg(dst.as_u8()));
                }
                // A 32-bit move truncates a pointer into an opaque scalar.
                out = RegState::unknown_scalar();
                out.umax = u32::MAX as u64;
                out.u32_max = u32::MAX;
                out.normalize();
            } else {
                out.var_off = out.var_off.subreg();
                out.zext_32_to_64();
                out.id = 0;
            }
        }
        *state.cur_mut().reg_mut(dst) = out;
        Ok(())
    }

    fn do_binary_alu(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        op: AluOp,
        dst: Reg,
        src: SrcOperand,
        is64: bool,
    ) -> Result<(), VerifierError> {
        let dst_state = *state.cur().reg(dst);
        let dst_is_ptr = dst_state.typ.is_pointer();
        let src_is_ptr = src.reg.typ.is_pointer();

        if !is64 && (dst_is_ptr || src_is_ptr) {
            self.cov.hit(Cat::Error, 105, 0);
            return Err(VerifierError::access(
                RejectReason::PtrArithForbidden,
                pc,
                "32-bit ALU on pointer prohibited",
            ));
        }

        if dst_is_ptr || src_is_ptr {
            return self.adjust_ptr_alu(state, pc, op, dst, dst_state, src);
        }

        // Pure scalar arithmetic. The result is a new value: sever any
        // equal-scalar linkage.
        let mut out = dst_state;
        out.id = 0;
        if is64 && op == AluOp::Or && self.has_bug(BugId::BoundsRefinement) {
            // Bug #12: the buggy refinement "knows" OR cannot exceed the
            // larger operand, but 4 | 2 = 6: the result umax can undercut
            // reachable values. Constant operands self-contradict with the
            // tnum and collapse to unknown below; variable operands keep
            // an internally consistent, unsoundly tight state that only
            // the differential oracle (Indicator #3) can observe.
            scalar_alu64(op, &mut out, &src.reg, 64);
            out.umax = dst_state.umax.max(src.reg.umax);
            out.combine_64_into_32();
            out.normalize();
            if !out.bounds_sane() {
                out.mark_unknown();
            }
        } else {
            scalar_transfer(op, is64, &mut out, &src.reg);
        }
        *state.cur_mut().reg_mut(dst) = out;
        Ok(())
    }

    /// Pointer arithmetic (`adjust_ptr_min_max_vals`).
    fn adjust_ptr_alu(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        op: AluOp,
        dst: Reg,
        dst_state: RegState,
        src: SrcOperand,
    ) -> Result<(), VerifierError> {
        let src_state = src.reg;
        self.cov
            .hit(Cat::PtrAlu, dst_state.typ.name().len() as u32, op as u32);

        // ptr - ptr of the same kind yields an opaque scalar — a pointer
        // leak, prohibited for unprivileged loads.
        if op == AluOp::Sub && dst_state.typ.is_pointer() && src_state.typ.is_pointer() {
            if self.opts.unprivileged {
                self.cov.hit(Cat::Error, 121, 0);
                return Err(VerifierError::access(
                    RejectReason::UnprivPtrOp,
                    pc,
                    format!("R{} pointer subtraction prohibited", dst.as_u8()),
                )
                .with_reg(dst.as_u8()));
            }
            if std::mem::discriminant(&dst_state.typ) == std::mem::discriminant(&src_state.typ) {
                *state.cur_mut().reg_mut(dst) = RegState::unknown_scalar();
                return Ok(());
            }
            self.cov.hit(Cat::Error, 106, 0);
            return Err(VerifierError::access(
                RejectReason::PtrArithForbidden,
                pc,
                format!(
                    "R{} invalid subtraction of differing pointer types",
                    dst.as_u8()
                ),
            ));
        }

        if !matches!(op, AluOp::Add | AluOp::Sub) {
            self.cov.hit(Cat::Error, 107, op as u32);
            return Err(VerifierError::access(
                RejectReason::PtrArithForbidden,
                pc,
                format!(
                    "R{} pointer arithmetic with {} operator prohibited",
                    dst.as_u8(),
                    op.symbol()
                ),
            ));
        }

        // Identify (pointer, scalar) orientation.
        let (ptr, scalar, ptr_in_dst) = if dst_state.typ.is_pointer() {
            if src_state.typ.is_pointer() {
                self.cov.hit(Cat::Error, 108, 0);
                return Err(VerifierError::access(
                    RejectReason::PtrArithForbidden,
                    pc,
                    "pointer += pointer prohibited",
                ));
            }
            (dst_state, src_state, true)
        } else {
            // scalar ± ptr: only `scalar + ptr` commutes into `ptr + scalar`.
            if op == AluOp::Sub {
                self.cov.hit(Cat::Error, 109, 0);
                return Err(VerifierError::access(
                    RejectReason::PtrArithForbidden,
                    pc,
                    "cannot subtract pointer from scalar",
                ));
            }
            (src_state, dst_state, false)
        };
        let _ = ptr_in_dst;

        // Nullable pointers must be null-checked before arithmetic — the
        // improper check of CVE-2022-23222 allowed exactly this.
        if ptr.maybe_null && !self.has_bug(BugId::CveAluOnNullablePtr) {
            self.cov.hit(Cat::Error, 110, 0);
            return Err(VerifierError::access(
                RejectReason::PtrArithForbidden,
                pc,
                format!(
                    "R{} pointer arithmetic on {}_or_null prohibited, null-check it first",
                    dst.as_u8(),
                    ptr.typ.name()
                ),
            )
            .with_reg(dst.as_u8()));
        }

        match ptr.typ {
            RegType::ConstPtrToMap { .. } | RegType::PtrToPacketEnd => {
                self.cov.hit(Cat::Error, 111, 0);
                return Err(VerifierError::access(
                    RejectReason::PtrArithForbidden,
                    pc,
                    format!(
                        "R{} pointer arithmetic on {} prohibited",
                        dst.as_u8(),
                        ptr.typ.name()
                    ),
                )
                .with_reg(dst.as_u8()));
            }
            RegType::PtrToCtx
                // Only constant offsets keep a ctx pointer usable.
                if scalar.const_value().is_none() => {
                    self.cov.hit(Cat::Error, 112, 0);
                    return Err(VerifierError::access(
                        RejectReason::CtxAccessInvalid,
                        pc,
                        "variable ctx access prohibited",
                    ));
                }
            _ => {}
        }

        let mut out = ptr;

        if let Some(c) = scalar.const_value() {
            // A constant-operand path through this instruction cannot be
            // covered by a single runtime bound shared with variable
            // paths; drop any recorded check for the instruction.
            self.merge_alu_limit(pc, None);
            let delta = if op == AluOp::Add {
                c as i64
            } else {
                (c as i64).wrapping_neg()
            };
            let new_off = (out.off as i64).checked_add(delta);
            match new_off {
                Some(v) if (i32::MIN as i64..=i32::MAX as i64).contains(&v) => {
                    out.off = v as i32;
                }
                _ => {
                    self.cov.hit(Cat::Error, 113, 0);
                    return Err(VerifierError::access(
                        RejectReason::PtrArithOutOfRange,
                        pc,
                        "pointer offset out of range",
                    ));
                }
            }
            // Constant movement keeps the packet id and range; access
            // checks account for the fixed offset against the range.
        } else {
            // Unprivileged: variable pointer arithmetic needs a known
            // direction for speculative sanitation; unknown-sign scalars
            // are rejected (`sanitize_ptr_alu` bail-out).
            if self.opts.unprivileged && scalar.smin < 0 && scalar.smax > 0 {
                self.cov.hit(Cat::Error, 122, 0);
                return Err(VerifierError::access(
                    RejectReason::UnprivPtrOp,
                    pc,
                    format!(
                        "R{} variable pointer arithmetic with unknown sign prohibited",
                        dst.as_u8()
                    ),
                )
                .with_reg(dst.as_u8()));
            }
            // Variable offset: fold the scalar's bounds into the pointer's
            // variable part.
            let (svar, smin, smax, umin, umax) = if op == AluOp::Add {
                (
                    scalar.var_off,
                    scalar.smin,
                    scalar.smax,
                    scalar.umin,
                    scalar.umax,
                )
            } else {
                // ptr - scalar: negate the scalar's range.
                let var = Tnum::const_val(0).sub(scalar.var_off);
                (
                    var,
                    scalar.smax.checked_neg().unwrap_or(i64::MAX),
                    scalar.smin.checked_neg().unwrap_or(i64::MAX),
                    0,
                    u64::MAX,
                )
            };
            out.var_off = out.var_off.add(svar);
            out.smin = out.smin.saturating_add(smin);
            out.smax = out.smax.saturating_add(smax);
            out.umin = out.umin.checked_add(umin).unwrap_or(0);
            out.umax = out.umax.saturating_add(umax);
            if out.umin > out.umax {
                out.umin = 0;
                out.umax = u64::MAX;
            }
            out.combine_64_into_32();
            // Variable movement severs the packet-origin correlation.
            out.pkt_range = 0;
            out.id = 0;

            // Record the runtime alu_limit assertion BVF's sanitation will
            // emit (the paper's patch 3). An unknown scalar can only have
            // come from a register. The limit is path-dependent, so the
            // candidates from all explored paths are merged: agreeing
            // paths widen the limit to the maximum; disagreement (or a
            // path with no derivable limit) drops the check, mirroring
            // the kernel's multiple-paths sanitation bail-out.
            let scalar_reg = if ptr_in_dst { src.src_reg } else { Some(dst) };
            let candidate = match (ptr_limit(&ptr, self.kernel, op, &scalar), scalar_reg) {
                (Some((limit, downward)), Some(scalar_reg)) => {
                    // The assertion is an oracle for the verifier's own
                    // belief: only emit it when the tracked bounds already
                    // satisfy it. A runtime violation then proves the
                    // range analysis wrong for this execution. The
                    // believed maximum movement magnitude depends on the
                    // operand's sign: umax for non-negative operands,
                    // -smin for non-positive ones.
                    let believed_magnitude = if scalar.smin >= 0 {
                        Some(scalar.umax)
                    } else if scalar.smax <= 0 {
                        scalar.smin.checked_neg().map(|m| m as u64)
                    } else {
                        None
                    };
                    match believed_magnitude {
                        Some(m) if m <= limit => Some(AluLimitMeta {
                            limit,
                            scalar_reg,
                            downward,
                            negate: op == AluOp::Sub,
                        }),
                        _ => None,
                    }
                }
                _ => None,
            };
            self.merge_alu_limit(pc, candidate);
            if candidate.is_some() {
                self.cov.hit(Cat::PtrAlu, 900, 0);
            }
        }

        *state.cur_mut().reg_mut(dst) = out;
        Ok(())
    }
}

/// `retrieve_ptr_limit`: distance (in the direction of travel) from the
/// pointer's current fixed offset to the edge of its object. Returns
/// `(limit, downward)`; `None` when the direction is unknown or the type
/// is not sanitizable.
fn ptr_limit(
    ptr: &RegState,
    kernel: &bvf_kernel_sim::Kernel,
    op: AluOp,
    scalar: &RegState,
) -> Option<(u64, bool)> {
    // Direction of travel: ADD with non-negative scalar moves up, etc.
    let up = if scalar.smin >= 0 {
        op == AluOp::Add
    } else if scalar.smax <= 0 {
        op == AluOp::Sub
    } else {
        return None;
    };
    let off = ptr.off as i64;
    let span = match ptr.typ {
        RegType::PtrToStack => {
            // Valid stack offsets are [-512, 0).
            if up {
                Some(-off)
            } else {
                Some(off + bvf_isa::reg::STACK_SIZE as i64)
            }
        }
        RegType::PtrToMapValue { map_id } => {
            let vs = kernel.maps.get(map_id)?.def.value_size as i64;
            if up {
                Some(vs - off)
            } else {
                Some(off)
            }
        }
        RegType::PtrToMem { size, .. } => {
            if up {
                Some(size as i64 - off)
            } else {
                Some(off)
            }
        }
        _ => None,
    }?;
    if span < 0 {
        return None;
    }
    Some((span as u64, !up))
}

// ---- scalar bounds algebra -----------------------------------------------

/// The complete scalar ALU transfer function: applies `op` to the
/// abstract scalar `dst` (in place) with operand `src`, including the
/// 32-bit subregister projection, bound recombination, and
/// normalization the verifier performs after the raw bounds algebra.
///
/// This is the *fix-free* transfer the verifier uses when no defect is
/// injected; it is exposed so soundness can be property-checked
/// directly: for all `x ∈ γ(dst)` and `y ∈ γ(src)`, the concrete
/// result of `x op y` (with the interpreter's wrap/mask semantics)
/// must be a member of the transferred `dst`.
///
/// `dst` and `src` must be scalars; pointer arithmetic takes a
/// different path entirely.
pub fn scalar_transfer(op: AluOp, is64: bool, dst: &mut RegState, src: &RegState) {
    dst.id = 0;
    if is64 {
        scalar_alu64(op, dst, src, 64);
        dst.combine_64_into_32();
        dst.normalize();
    } else {
        scalar_alu32(op, dst, src);
        dst.zext_32_to_64();
    }
    if !dst.bounds_sane() {
        dst.mark_unknown();
    }
}

/// `bits` is the instruction bitness (64, or 32 when invoked on the
/// subreg projection by [`scalar_alu32`]); only the shifts consult it.
/// An arithmetic shift must replicate from the *operand's* sign bit —
/// on a 32-bit projection that is bit 31, not bit 63 — and a shift
/// count is only a compile-time constant below the bitness (the runtime
/// masks larger counts to it).
fn scalar_alu64(op: AluOp, dst: &mut RegState, src: &RegState, bits: u8) {
    match op {
        AluOp::Add => {
            dst.smin = dst.smin.checked_add(src.smin).unwrap_or(i64::MIN);
            dst.smax = dst.smax.checked_add(src.smax).unwrap_or(i64::MAX);
            if dst.smin == i64::MIN || dst.smax == i64::MAX {
                dst.smin = i64::MIN;
                dst.smax = i64::MAX;
            }
            match (
                dst.umin.checked_add(src.umin),
                dst.umax.checked_add(src.umax),
            ) {
                (Some(lo), Some(hi)) => {
                    dst.umin = lo;
                    dst.umax = hi;
                }
                _ => {
                    dst.umin = 0;
                    dst.umax = u64::MAX;
                }
            }
            dst.var_off = dst.var_off.add(src.var_off);
        }
        AluOp::Sub => {
            let smin = dst.smin.checked_sub(src.smax);
            let smax = dst.smax.checked_sub(src.smin);
            match (smin, smax) {
                (Some(lo), Some(hi)) => {
                    dst.smin = lo;
                    dst.smax = hi;
                }
                _ => {
                    dst.smin = i64::MIN;
                    dst.smax = i64::MAX;
                }
            }
            if dst.umin < src.umax {
                dst.umin = 0;
                dst.umax = u64::MAX;
            } else {
                dst.umin -= src.umax;
                dst.umax -= src.umin;
            }
            dst.var_off = dst.var_off.sub(src.var_off);
        }
        AluOp::Mul => {
            dst.var_off = dst.var_off.mul(src.var_off);
            if dst.smin < 0 || src.smin < 0 {
                dst.mark_unbounded();
            } else {
                match (
                    dst.umin.checked_mul(src.umin),
                    dst.umax.checked_mul(src.umax),
                ) {
                    (Some(lo), Some(hi)) => {
                        dst.umin = lo;
                        dst.umax = hi;
                        dst.smin = i64::MIN;
                        dst.smax = i64::MAX;
                    }
                    _ => dst.mark_unbounded(),
                }
            }
        }
        AluOp::Div => {
            // eBPF division is unsigned; by-zero yields zero. A zero
            // *immediate* is rejected earlier, but a register may be a
            // known-zero scalar: runtime semantics give exactly 0.
            match src.const_value() {
                Some(0) => {
                    dst.set_known(0);
                }
                Some(c) => {
                    dst.umin /= c;
                    dst.umax /= c;
                    dst.smin = i64::MIN;
                    dst.smax = i64::MAX;
                    dst.var_off = Tnum::range(dst.umin, dst.umax);
                }
                None => {
                    // Divisor may be 0 at runtime (result 0) or 1.
                    dst.mark_unknown();
                }
            }
        }
        AluOp::Mod => match src.const_value() {
            // Modulo zero leaves dst unchanged at runtime.
            Some(0) => {}
            Some(c) => {
                dst.umin = 0;
                dst.umax = dst.umax.min(c - 1);
                dst.smin = i64::MIN;
                dst.smax = i64::MAX;
                dst.var_off = Tnum::range(0, dst.umax);
            }
            None => dst.mark_unknown(),
        },
        AluOp::And => {
            dst.var_off = dst.var_off.and(src.var_off);
            let both_nonneg = dst.smin >= 0 && src.smin >= 0;
            dst.mark_unbounded();
            if both_nonneg {
                dst.smin = 0;
            }
        }
        AluOp::Or => {
            dst.var_off = dst.var_off.or(src.var_off);
            let both_nonneg = dst.smin >= 0 && src.smin >= 0;
            let umin = dst.umin.max(src.umin);
            dst.mark_unbounded();
            dst.umin = umin;
            if both_nonneg {
                dst.smin = 0;
            }
        }
        AluOp::Xor => {
            dst.var_off = dst.var_off.xor(src.var_off);
            let both_nonneg = dst.smin >= 0 && src.smin >= 0;
            dst.mark_unbounded();
            if both_nonneg {
                dst.smin = 0;
            }
        }
        // Shift amounts: the runtime masks the count to the instruction
        // bitness (`& 63` / `& 31`), so a count >= `bits` wraps around
        // rather than zeroing the register. Out-of-range immediates were
        // rejected up front; an out-of-range *register* count must fall
        // back to unknown (matching the kernel, which refuses to model
        // wrapped shifts).
        AluOp::Lsh => match src.const_value() {
            Some(s) if s < bits as u64 => {
                let s = s as u8;
                dst.var_off = dst.var_off.lshift(s);
                if dst.umax.leading_zeros() as u64 >= s as u64 {
                    dst.umin <<= s;
                    dst.umax <<= s;
                    dst.smin = i64::MIN;
                    dst.smax = i64::MAX;
                } else {
                    dst.mark_unbounded();
                }
            }
            _ => {
                dst.mark_unbounded();
                dst.var_off = Tnum::UNKNOWN;
            }
        },
        AluOp::Rsh => match src.const_value() {
            Some(s) if s < bits as u64 => {
                let s = s as u8;
                dst.var_off = dst.var_off.rshift(s);
                dst.umin >>= s;
                dst.umax >>= s;
                dst.smin = i64::MIN;
                dst.smax = i64::MAX;
            }
            _ => {
                dst.mark_unbounded();
                dst.var_off = Tnum::UNKNOWN;
            }
        },
        AluOp::Arsh => match src.const_value() {
            Some(s) if s < bits as u64 => {
                let s = s as u8;
                dst.var_off = dst.var_off.arshift(s, bits);
                dst.smin >>= s;
                dst.smax >>= s;
                dst.umin = 0;
                dst.umax = u64::MAX;
            }
            _ => {
                dst.mark_unbounded();
                dst.var_off = Tnum::UNKNOWN;
            }
        },
        AluOp::Mov | AluOp::Neg | AluOp::End => unreachable!("handled elsewhere"),
    }
}

fn scalar_alu32(op: AluOp, dst: &mut RegState, src: &RegState) {
    // Project both operands to 32 bits, run the 64-bit algebra in the
    // 32-bit subspace, then zero-extend.
    let mut d = RegState::unknown_scalar();
    d.var_off = dst.var_off.subreg();
    d.umin = dst.u32_min as u64;
    d.umax = dst.u32_max as u64;
    d.smin = dst.s32_min as i64;
    d.smax = dst.s32_max as i64;
    let mut s = RegState::unknown_scalar();
    s.var_off = src.var_off.subreg();
    s.umin = src.u32_min as u64;
    s.umax = src.u32_max as u64;
    s.smin = src.s32_min as i64;
    s.smax = src.s32_max as i64;

    // Shifts past 31 bits are invalid in 32-bit mode and yield unknowns;
    // the imm case was rejected earlier, reg case saturates.
    scalar_alu64(op, &mut d, &s, 32);

    // Truncate results back into 32-bit space.
    d.var_off = d.var_off.cast32();
    dst.var_off = d.var_off;
    // The projected interval is only usable if it fits the 32-bit
    // domain entirely: an excursion past the domain edge means the
    // 32-bit result can wrap, so clamping one endpoint would keep the
    // other as a bound the wrapped values violate.
    if d.umax <= u32::MAX as u64 {
        dst.u32_min = d.umin as u32;
        dst.u32_max = d.umax as u32;
    } else {
        dst.u32_min = 0;
        dst.u32_max = u32::MAX;
    }
    let s32 = i32::MIN as i64..=i32::MAX as i64;
    if s32.contains(&d.smin) && s32.contains(&d.smax) && d.smin <= d.smax {
        dst.s32_min = d.smin as i32;
        dst.s32_max = d.smax as i32;
    } else {
        dst.s32_min = i32::MIN;
        dst.s32_max = i32::MAX;
    }
}
