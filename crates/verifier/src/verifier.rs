//! The main verification driver (`do_check` and friends).

use bvf_isa::opcode::pseudo;
use bvf_isa::{CallTarget, InsnKind, Program, Reg};
use bvf_kernel_sim::map::MapType;
use bvf_kernel_sim::progtype::ProgType;
use bvf_kernel_sim::Kernel;

use crate::check::jump::JumpOutcome;
use crate::cov::{Cat, Coverage};
use crate::env::{VerifiedProgram, Verifier, VerifierOpts};
use crate::errors::{RejectReason, VerifierError, VerifierPhase};
use std::rc::Rc;

use crate::prune::states_equal;
use crate::shape::{permissiveness, ExploredEntry, StateShape};
use crate::state::{FuncState, VerifierState, MAX_CALL_FRAMES};
use crate::types::{RegState, RegType};
use bvf_telemetry::profile::elapsed_ns;
use bvf_telemetry::PhaseTimings;
use std::time::Instant;

/// Maximum states remembered per prune point.
const MAX_STATES_PER_POINT: usize = 32;

/// A prune-point state on the current exploration path, used for
/// infinite-loop detection (the analog of `states_maybe_looping`): if the
/// path returns to the same instruction in a state subsumed by one of its
/// own ancestors, the loop can make no progress.
struct PathNode {
    pc: usize,
    /// Shared with the explored-index entry created at the same visit,
    /// so the loop scan and the explored scan can recognize the same
    /// candidate by `Rc` pointer identity and never compare it twice.
    state: Rc<VerifierState>,
    /// The state's structural fingerprint, computed once at push time.
    shape: StateShape,
    parent: Option<Rc<PathNode>>,
}

// Long exploration paths build long parent chains; drop them iteratively
// so deep programs cannot overflow the host stack.
impl Drop for PathNode {
    fn drop(&mut self) {
        let mut next = self.parent.take();
        while let Some(rc) = next {
            match Rc::try_unwrap(rc) {
                Ok(mut node) => next = node.parent.take(),
                Err(_) => break,
            }
        }
    }
}

/// How many ancestors the loop detector walks per prune point; an
/// abstract loop revisits its head frequently, so a bounded window
/// suffices and keeps pathological paths linear.
const LOOP_SCAN_WINDOW: usize = 256;

/// How many same-pc ancestors the loop detector actually *considers*
/// (fingerprint-filters or compares) per visit. A no-progress loop is
/// subsumed by its nearest ancestors, so examining the closest few is
/// enough — this mirrors the kernel, whose loop detection scans the
/// bounded `explored_states` list at the instruction rather than the
/// whole path. Matches [`MAX_STATES_PER_POINT`] so both scans consider
/// the same number of candidates.
const MAX_LOOP_CANDIDATES: usize = 32;

/// The outcome of a load attempt: the verdict plus the coverage the
/// attempt produced (available for rejected programs too — the fuzzer's
/// feedback does not depend on acceptance).
#[derive(Debug)]
pub struct VerifyOutcome {
    /// Accept (with the rewritten program) or reject.
    pub result: Result<VerifiedProgram, VerifierError>,
    /// Verifier branch coverage exercised by this program.
    pub cov: Coverage,
    /// Wall time per verification phase; phases a rejected load never
    /// reached stay 0. Observational only — nothing reads it back.
    pub timings: PhaseTimings,
    /// Per-instruction abstract-state snapshots of the main walk; empty
    /// unless [`VerifierOpts::snapshots`] was set.
    pub snapshots: crate::snapshot::SnapshotStream,
}

/// Verifies `prog` for `prog_type` against the kernel's tables.
pub fn verify(
    kernel: &Kernel,
    prog: &Program,
    prog_type: ProgType,
    opts: &VerifierOpts,
) -> VerifyOutcome {
    let mut v = Verifier::new(kernel, prog, prog_type, opts.clone());
    let result = v.run();
    VerifyOutcome {
        result,
        cov: v.cov,
        timings: v.timings,
        snapshots: v.snapshots,
    }
}

impl<'a> Verifier<'a> {
    /// Runs all verification passes; on success the program is rewritten.
    pub(crate) fn run(&mut self) -> Result<VerifiedProgram, VerifierError> {
        // Unprivileged loads are limited to the socket-filter class.
        if self.opts.unprivileged
            && !matches!(self.prog_type, ProgType::SocketFilter | ProgType::CgroupSkb)
        {
            self.cov.hit(Cat::Error, 17, 0);
            return Err(VerifierError::access(
                RejectReason::UnprivProgType,
                0,
                format!(
                    "program type {:?} not allowed for unprivileged users",
                    self.prog_type
                ),
            )
            .in_phase(VerifierPhase::Structure));
        }
        // Pass 0: structural checks (decode validity, jump targets,
        // register ranges, proper ending), then pass 1: discover
        // subprograms and prune points. Timed together as "structure",
        // with the phase recorded before `?` so rejected loads keep it.
        let t0 = Instant::now();
        let structure = bvf_isa::validate_structure(&self.prog)
            .map_err(|e| {
                self.cov.hit(Cat::Error, 1, 0);
                let reason = match &e {
                    bvf_isa::StructuralError::TooLong(_) => RejectReason::ComplexityLimit,
                    bvf_isa::StructuralError::JumpOutOfRange { .. } => {
                        RejectReason::JumpOutOfBounds
                    }
                    bvf_isa::StructuralError::FallthroughEnd => RejectReason::FellOffEnd,
                    _ => RejectReason::MalformedInsn,
                };
                VerifierError::invalid(reason, 0, e.to_string()).in_phase(VerifierPhase::Structure)
            })
            .and_then(|starts| {
                self.insn_starts = starts;
                self.scan_structure()
            });
        self.timings.structure_ns = elapsed_ns(t0);
        structure?;

        // Pass 2: the main symbolic walk.
        let t0 = Instant::now();
        let checked = self.do_check();
        self.timings.do_check_ns = elapsed_ns(t0);
        // Index occupancy, recorded for accepted and rejected loads
        // alike (the counters are observational).
        for point in self.explored.values() {
            if !point.is_empty() {
                self.timings.prune.points += 1;
                self.timings.prune.states_stored += point.len() as u64;
            }
        }
        checked?;

        // Pass 3: rewrite (pseudo resolution + fixups).
        let t0 = Instant::now();
        let fixed = self.do_fixups();
        self.timings.fixup_ns = elapsed_ns(t0);
        fixed.map_err(|e| e.in_phase(VerifierPhase::Fixup))?;

        Ok(VerifiedProgram {
            prog: self.prog.clone(),
            prog_type: self.prog_type,
            insn_meta: self.insn_meta.clone(),
            used_helpers: self.used_helpers.clone(),
            used_kfuncs: self.used_kfuncs.clone(),
            used_maps: self.used_maps.clone(),
            insns_processed: self.insn_processed,
            log: std::mem::take(&mut self.log),
        })
    }

    fn scan_structure(&mut self) -> Result<(), VerifierError> {
        // Prune points go where distinct paths can actually converge:
        // control-flow joins (static in-degree ≥ 2), back-edge targets
        // (loop heads — every cycle contains one, which keeps the loop
        // detector complete), and subprogram entries. Marking every
        // jump target and fallthrough, as before, spends states_equal
        // time at points only one path can ever reach.
        fn edge(from: usize, to: usize, in_degree: &mut [u32], back: &mut [bool]) {
            if to < in_degree.len() {
                in_degree[to] += 1;
                if to <= from {
                    back[to] = true;
                }
            }
        }
        let n = self.prog.insn_count();
        let mut in_degree = vec![0u32; n];
        let mut back_target = vec![false; n];
        let mut pc = 0;
        while pc < n {
            let (kind, slots) = self.prog.decode_at(pc).expect("validated");
            match kind {
                InsnKind::JmpCond { off, .. } => {
                    let target = (pc as i64 + 1 + off as i64) as usize;
                    edge(pc, target, &mut in_degree, &mut back_target);
                    edge(pc, pc + 1, &mut in_degree, &mut back_target);
                }
                InsnKind::Ja { off } => {
                    let target = (pc as i64 + 1 + off as i64) as usize;
                    edge(pc, target, &mut in_degree, &mut back_target);
                }
                InsnKind::Exit => {}
                InsnKind::Call {
                    target: CallTarget::Pseudo(off),
                } => {
                    let target = (pc as i64 + 1 + off as i64) as usize;
                    self.subprog_starts.insert(target);
                    self.prune_points.insert(target);
                    self.cov.hit(Cat::Subprog, 0, 0);
                    // Control flows back here from the callee's exits;
                    // the return site can join other flows.
                    edge(pc, pc + 1, &mut in_degree, &mut back_target);
                }
                _ => {
                    edge(pc, pc + slots, &mut in_degree, &mut back_target);
                }
            }
            pc += slots;
        }
        for v in 0..n {
            if in_degree[v] >= 2 || back_target[v] {
                self.prune_points.insert(v);
            }
        }
        Ok(())
    }

    fn do_check(&mut self) -> Result<(), VerifierError> {
        let mut worklist: Vec<(VerifierState, usize, Option<Rc<PathNode>>)> =
            vec![(VerifierState::entry(), 0, None)];

        while let Some((mut state, mut pc, mut trace)) = worklist.pop() {
            'path: loop {
                self.insn_processed += 1;
                if self.insn_processed > self.opts.insn_limit {
                    self.cov.hit(Cat::Error, 2, 0);
                    return Err(VerifierError::invalid(
                        RejectReason::ComplexityLimit,
                        pc,
                        format!(
                            "BPF program is too large. Processed {} insn",
                            self.insn_processed
                        ),
                    ));
                }
                if pc >= self.prog.insn_count() || !self.insn_starts[pc] {
                    self.cov.hit(Cat::Error, 3, 0);
                    return Err(VerifierError::invalid(
                        RejectReason::FellOffEnd,
                        pc,
                        "fell off the end of program",
                    ));
                }

                // Loop detection, then pruning. The whole block is billed
                // to `prune_ns` (a subset of `do_check_ns`), so each of
                // its three exits records the elapsed time first.
                if self.prune_points.contains(&pc) {
                    let prune_t0 = Instant::now();
                    let use_index = self.opts.prune_index;
                    let cur_shape = StateShape::of(&state);
                    self.timings.prune.checks += 1;

                    // Loop detection first, so the "infinite loop"
                    // verdict cannot be masked by a prune. States it
                    // actually compares are remembered by Rc identity;
                    // the explored scan below shares them so each
                    // (pc, state) pair is compared at most once per
                    // visit. The fingerprint filter only skips
                    // comparisons that must return false, so the
                    // verdict is identical with the index off.
                    let mut ancestors_compared: Vec<*const VerifierState> = Vec::new();
                    let mut node = trace.as_ref();
                    let mut scanned = 0;
                    let mut candidates = 0;
                    while let Some(n) = node {
                        scanned += 1;
                        if scanned > LOOP_SCAN_WINDOW || candidates >= MAX_LOOP_CANDIDATES {
                            break;
                        }
                        if n.pc == pc {
                            candidates += 1;
                            if use_index && !n.shape.may_subsume(&cur_shape) {
                                self.timings.prune.fingerprint_filtered += 1;
                            } else {
                                self.timings.prune.states_equal_calls += 1;
                                if states_equal(&n.state, &state) {
                                    self.cov.hit(Cat::Error, 16, 0);
                                    self.timings.prune_ns += elapsed_ns(prune_t0);
                                    return Err(VerifierError::invalid(
                                        RejectReason::BackEdgeLimit,
                                        pc,
                                        format!("infinite loop detected at insn {pc}"),
                                    ));
                                }
                                ancestors_compared.push(Rc::as_ptr(&n.state));
                            }
                        }
                        node = n.parent.as_ref();
                    }

                    // Explored-state scan. With the index on, only
                    // bucket-matched, shape-compatible candidates reach
                    // states_equal; "any candidate subsumes" is
                    // order-insensitive, so both modes reach the same
                    // prune decision.
                    let point = self.explored.entry(pc).or_default();
                    let total = point.len() as u64;
                    let mut calls = 0u64;
                    let mut shared = 0u64;
                    let mut hit = false;
                    if use_index {
                        for &i in point.bucket_candidates(cur_shape.bucket()) {
                            let e = &point.entries()[i];
                            if !e.shape.may_subsume(&cur_shape) {
                                continue;
                            }
                            if ancestors_compared.contains(&Rc::as_ptr(&e.state)) {
                                shared += 1;
                                continue;
                            }
                            calls += 1;
                            if states_equal(&e.state, &state) {
                                hit = true;
                                break;
                            }
                        }
                    } else {
                        for e in point.entries() {
                            if ancestors_compared.contains(&Rc::as_ptr(&e.state)) {
                                shared += 1;
                                continue;
                            }
                            calls += 1;
                            if states_equal(&e.state, &state) {
                                hit = true;
                                break;
                            }
                        }
                    }
                    self.timings.prune.states_equal_calls += calls;
                    self.timings.prune.loop_scan_shared += shared;
                    if use_index && !hit {
                        self.timings.prune.fingerprint_filtered += total - shared - calls;
                    }
                    if hit {
                        self.timings.prune.hits += 1;
                        self.cov.hit(Cat::Prune, 0, 1);
                        self.timings.prune_ns += elapsed_ns(prune_t0);
                        break 'path;
                    }
                    self.cov.hit(Cat::Prune, 0, 0);
                    // One shared copy feeds both the explored index and
                    // the path trace — that sharing is what lets the two
                    // scans recognize each other's candidates.
                    let shared_state = Rc::new(state.clone());
                    let evicted = point.insert(
                        ExploredEntry {
                            state: Rc::clone(&shared_state),
                            shape: cur_shape.clone(),
                            permissiveness: permissiveness(&state),
                        },
                        MAX_STATES_PER_POINT,
                    );
                    if evicted {
                        self.timings.prune.evictions += 1;
                    }
                    trace = Some(Rc::new(PathNode {
                        pc,
                        state: shared_state,
                        shape: cur_shape,
                        parent: trace.take(),
                    }));
                    self.timings.prune_ns += elapsed_ns(prune_t0);
                }

                // Differential-oracle snapshot: the abstract register
                // file proved *before* this instruction, main frame only
                // (the concrete trace only observes main-frame steps).
                if self.opts.snapshots && state.depth() == 0 {
                    self.snapshots.record(pc, &state);
                }

                let (kind, slots) = self.prog.decode_at(pc).expect("validated");
                self.cov
                    .hit(Cat::InsnClass, self.prog.insns()[pc].code as u32 & 0x07, 0);
                self.logln(|| format!("{pc}: {}", bvf_isa::disasm::format_insn(pc, &kind)));

                match kind {
                    InsnKind::AluReg { .. }
                    | InsnKind::AluImm { .. }
                    | InsnKind::Neg { .. }
                    | InsnKind::Endian { .. } => {
                        self.check_alu(&mut state, pc, &kind)?;
                        pc += slots;
                    }
                    InsnKind::LdImm64 {
                        dst,
                        src_pseudo,
                        imm64,
                    } => {
                        self.check_ld_imm64(&mut state, pc, dst, src_pseudo, imm64)?;
                        pc += slots;
                    }
                    InsnKind::LdAbs { .. } | InsnKind::LdInd { .. } => {
                        self.check_ld_legacy(&mut state, pc, &kind)?;
                        pc += slots;
                    }
                    InsnKind::Ldx { .. }
                    | InsnKind::St { .. }
                    | InsnKind::Stx { .. }
                    | InsnKind::Atomic { .. } => {
                        self.check_mem(&mut state, pc, &kind)?;
                        pc += slots;
                    }
                    InsnKind::Ja { off } => {
                        pc = (pc as i64 + 1 + off as i64) as usize;
                    }
                    InsnKind::JmpCond { off, .. } => {
                        let target = (pc as i64 + 1 + off as i64) as usize;
                        match self.check_cond_jmp(&mut state, pc, &kind)? {
                            JumpOutcome::FallthroughOnly => pc += 1,
                            JumpOutcome::JumpOnly => pc = target,
                            JumpOutcome::Both(jump_state) => {
                                worklist.push((*jump_state, target, trace.clone()));
                                pc += 1;
                            }
                        }
                    }
                    InsnKind::Call { target } => match target {
                        CallTarget::Helper(id) => {
                            // `bpf_tail_call` transfers control but also
                            // falls through on failure; state-wise it is a
                            // plain helper returning a scalar.
                            self.check_helper_call(&mut state, pc, id)?;
                            pc += 1;
                        }
                        CallTarget::Kfunc(id) => {
                            self.check_kfunc_call(&mut state, pc, id)?;
                            pc += 1;
                        }
                        CallTarget::Pseudo(off) => {
                            let target = (pc as i64 + 1 + off as i64) as usize;
                            self.enter_subprog(&mut state, pc, target)?;
                            pc = target;
                        }
                    },
                    InsnKind::Exit => {
                        if state.depth() > 0 {
                            pc = self.return_from_subprog(&mut state, pc)?;
                            continue 'path;
                        }
                        self.check_main_exit(&state, pc)?;
                        break 'path;
                    }
                }
            }
        }
        Ok(())
    }

    fn check_ld_imm64(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        dst: Reg,
        src_pseudo: u8,
        imm64: u64,
    ) -> Result<(), VerifierError> {
        self.cov.hit(Cat::Pseudo, src_pseudo as u32, 0);
        let out = match src_pseudo {
            pseudo::NONE => RegState::known_scalar(imm64),
            pseudo::MAP_FD => {
                let fd = imm64 as u32;
                let Some(map) = self.kernel.maps.get(fd) else {
                    self.cov.hit(Cat::Error, 4, 0);
                    return Err(VerifierError::invalid(
                        RejectReason::BadMapFd,
                        pc,
                        format!("fd {fd} is not a map"),
                    ));
                };
                self.used_maps.insert(map.id);
                RegState::pointer(RegType::ConstPtrToMap { map_id: map.id })
            }
            pseudo::MAP_VALUE => {
                let fd = imm64 as u32;
                let off = (imm64 >> 32) as u32;
                let Some(map) = self.kernel.maps.get(fd) else {
                    self.cov.hit(Cat::Error, 4, 0);
                    return Err(VerifierError::invalid(
                        RejectReason::BadMapFd,
                        pc,
                        format!("fd {fd} is not a map"),
                    ));
                };
                if map.def.map_type != MapType::Array {
                    self.cov.hit(Cat::Error, 5, 0);
                    return Err(VerifierError::invalid(
                        RejectReason::BadDirectValue,
                        pc,
                        "direct value access only supported for array maps",
                    ));
                }
                if off >= map.def.value_size {
                    self.cov.hit(Cat::Error, 6, 0);
                    return Err(VerifierError::invalid(
                        RejectReason::BadDirectValue,
                        pc,
                        format!(
                            "direct value offset {off} beyond value_size {}",
                            map.def.value_size
                        ),
                    ));
                }
                self.used_maps.insert(map.id);
                let mut r = RegState::pointer(RegType::PtrToMapValue { map_id: map.id });
                r.off = off as i32;
                r
            }
            pseudo::BTF_ID => {
                let btf_id = imm64 as u32;
                if self.kernel.btf.type_by_id(btf_id).is_none() {
                    self.cov.hit(Cat::Error, 7, btf_id.min(16));
                    return Err(VerifierError::invalid(
                        RejectReason::BtfAccessInvalid,
                        pc,
                        format!("ldimm64 unable to resolve btf_id {btf_id}"),
                    ));
                }
                // Trusted per the type system — not marked maybe_null even
                // though the object may be null at runtime (the seed of
                // bug #1).
                RegState::pointer(RegType::PtrToBtfId { btf_id })
            }
            other => {
                self.cov.hit(Cat::Error, 8, other as u32);
                return Err(VerifierError::invalid(
                    RejectReason::MalformedInsn,
                    pc,
                    format!("unknown ldimm64 src_reg {other}"),
                ));
            }
        };
        *state.cur_mut().reg_mut(dst) = out;
        Ok(())
    }

    fn check_ld_legacy(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        kind: &InsnKind,
    ) -> Result<(), VerifierError> {
        if !matches!(
            self.prog_type,
            ProgType::SocketFilter | ProgType::SchedCls | ProgType::CgroupSkb
        ) {
            self.cov.hit(Cat::Error, 9, 0);
            return Err(VerifierError::invalid(
                RejectReason::UnsupportedInsn,
                pc,
                "BPF_LD_[ABS|IND] instructions not allowed for this program type",
            ));
        }
        if let InsnKind::LdInd { src, .. } = kind {
            self.check_reg_init(state, *src, pc)?;
        }
        // The legacy loads implicitly use ctx in R6 per ABI... our ABI
        // keeps R1; they clobber caller-saved regs and load into R0.
        state.cur_mut().clobber_caller_saved();
        *state.cur_mut().reg_mut(Reg::R0) = RegState::unknown_scalar();
        Ok(())
    }

    fn enter_subprog(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
        target: usize,
    ) -> Result<(), VerifierError> {
        self.cov.hit(Cat::Subprog, 0, 1);
        if state.frames.len() >= MAX_CALL_FRAMES {
            self.cov.hit(Cat::Error, 10, 0);
            return Err(VerifierError::invalid(
                RejectReason::CallDepthLimit,
                pc,
                format!("the call stack of {MAX_CALL_FRAMES} frames is too deep"),
            ));
        }
        if target >= self.prog.insn_count() || !self.insn_starts[target] {
            self.cov.hit(Cat::Error, 11, 0);
            return Err(VerifierError::invalid(
                RejectReason::BadCallTarget,
                pc,
                "invalid subprog call target",
            ));
        }
        let mut callee = FuncState::new(target, pc + 1);
        // Arguments R1..R5 are passed; R10 is the callee's own frame.
        for r in Reg::ARGS {
            callee.regs[r.index()] = *state.cur().reg(r);
        }
        callee.regs[Reg::R10.index()] = RegState::pointer(RegType::PtrToStack);
        state.frames.push(Rc::new(callee));
        Ok(())
    }

    fn return_from_subprog(
        &mut self,
        state: &mut VerifierState,
        pc: usize,
    ) -> Result<usize, VerifierError> {
        let callee = state.frames.pop().expect("depth checked");
        let r0 = callee.regs[Reg::R0.index()];
        if r0.typ != RegType::Scalar {
            self.cov.hit(Cat::Error, 12, 0);
            return Err(VerifierError::invalid(
                RejectReason::BadReturnValue,
                pc,
                "At callback/subprog exit the register R0 must be a scalar",
            )
            .with_reg(0));
        }
        self.cov.hit(Cat::Subprog, 0, 2);
        let caller = state.cur_mut();
        caller.clobber_caller_saved();
        caller.regs[Reg::R0.index()] = r0;
        Ok(callee.callsite)
    }

    fn check_main_exit(&mut self, state: &VerifierState, pc: usize) -> Result<(), VerifierError> {
        let r0 = state.cur().reg(Reg::R0);
        if r0.typ == RegType::NotInit {
            self.cov.hit(Cat::Error, 13, 0);
            return Err(
                VerifierError::access(RejectReason::UninitRegRead, pc, "R0 !read_ok").with_reg(0),
            );
        }
        if r0.typ != RegType::Scalar {
            self.cov.hit(Cat::Error, 14, 0);
            return Err(VerifierError::access(
                RejectReason::BadReturnValue,
                pc,
                format!("At program exit the register R0 has type {}", r0.typ.name()),
            )
            .with_reg(0));
        }
        if let Some(r) = state.acquired_refs.first() {
            self.cov.hit(Cat::Error, 15, 0);
            return Err(VerifierError::invalid(
                RejectReason::UnreleasedReference,
                pc,
                format!("Unreleased reference id={} alloc_insn={}", r.id, r.insn_idx),
            ));
        }
        self.cov.hit(Cat::InsnClass, 100, 0);
        Ok(())
    }
}
