//! Verifier states: stack slots, function frames, and whole-path states.
//!
//! Frames and stacks live behind [`Rc`]-based copy-on-write: branching
//! clones a `VerifierState` by bumping reference counts, and the first
//! mutation through [`VerifierState::cur_mut`] /
//! [`FuncState::stack_mut`] unshares only the touched frame (and only
//! its stack when the stack itself is written). Untouched frames stay
//! shared across the DFS worklist, the path trace, and the explored
//! index.

use std::rc::Rc;

use serde::{Deserialize, Serialize};

use bvf_isa::reg::STACK_SIZE;
use bvf_isa::Reg;

use crate::types::{RegState, RegType};

/// Number of 8-byte stack slots per frame.
pub const STACK_SLOTS: usize = (STACK_SIZE as usize) / 8;

/// Maximum call depth for bpf-to-bpf calls.
pub const MAX_CALL_FRAMES: usize = 8;

/// Classification of one stack byte (`STACK_*` in the kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StackByte {
    /// Never written.
    Invalid,
    /// Part of a spilled register.
    Spill,
    /// Written with arbitrary data.
    Misc,
    /// Known zero.
    Zero,
}

/// One 8-byte stack slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackSlot {
    /// Per-byte classification; index 0 is the lowest address.
    pub bytes: [StackByte; 8],
    /// The register state spilled here (meaningful when all bytes are
    /// [`StackByte::Spill`]).
    pub spilled: RegState,
}

impl Default for StackSlot {
    fn default() -> Self {
        StackSlot {
            bytes: [StackByte::Invalid; 8],
            spilled: RegState::not_init(),
        }
    }
}

impl StackSlot {
    /// Whether the whole slot holds one spilled register.
    pub fn is_full_spill(&self) -> bool {
        self.bytes.iter().all(|b| *b == StackByte::Spill)
    }

    /// Whether every byte has been initialized somehow.
    pub fn all_initialized(&self) -> bool {
        self.bytes.iter().all(|b| *b != StackByte::Invalid)
    }
}

/// State of one call frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncState {
    /// Register states, indexed by register number (includes `Ax`).
    pub regs: Vec<RegState>,
    /// Stack slots; slot `i` covers bytes `[-8*(i+1), -8*i)` relative to
    /// the frame pointer. Copy-on-write: reads go through `Deref`,
    /// writes through [`FuncState::stack_mut`], so cloning a frame that
    /// never touches its stack shares the 64-slot vector.
    pub stack: Rc<Vec<StackSlot>>,
    /// Instruction index to return to (caller's call insn + 1); 0 for the
    /// main frame.
    pub callsite: usize,
    /// Subprogram entry instruction of this frame.
    pub subprog_start: usize,
}

impl FuncState {
    /// A fresh frame with all registers uninitialized.
    pub fn new(subprog_start: usize, callsite: usize) -> FuncState {
        FuncState {
            regs: vec![RegState::not_init(); 12],
            stack: Rc::new(vec![StackSlot::default(); STACK_SLOTS]),
            callsite,
            subprog_start,
        }
    }

    /// The entry frame: `R1` = context, `R10` = frame pointer.
    pub fn entry() -> FuncState {
        let mut f = FuncState::new(0, 0);
        f.regs[Reg::R1.index()] = RegState::pointer(RegType::PtrToCtx);
        f.regs[Reg::R10.index()] = RegState::pointer(RegType::PtrToStack);
        f
    }

    /// Read access to a register state.
    pub fn reg(&self, r: Reg) -> &RegState {
        &self.regs[r.index()]
    }

    /// Mutable access to a register state.
    pub fn reg_mut(&mut self, r: Reg) -> &mut RegState {
        &mut self.regs[r.index()]
    }

    /// Mutable access to the stack slots, unsharing them first if the
    /// vector is shared with another state (copy-on-write).
    pub fn stack_mut(&mut self) -> &mut Vec<StackSlot> {
        Rc::make_mut(&mut self.stack)
    }

    /// Converts a frame-pointer-relative offset to `(slot, byte)` indices.
    ///
    /// Valid offsets are `-512..=-1`.
    pub fn stack_index(off: i32) -> Option<(usize, usize)> {
        if !(-STACK_SIZE..0).contains(&off) {
            return None;
        }
        let from_bottom = (off + STACK_SIZE) as usize; // 0..512
        let slot = STACK_SLOTS - 1 - from_bottom / 8;
        let byte = from_bottom % 8;
        Some((slot, byte))
    }

    /// Marks caller-saved registers clobbered after a helper/kfunc call.
    pub fn clobber_caller_saved(&mut self) {
        for r in [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5] {
            self.regs[r.index()] = RegState::not_init();
        }
    }
}

/// A tracked acquired reference (ringbuf record, task reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefState {
    /// Reference id (matches `RegState::ref_obj_id`).
    pub id: u32,
    /// Instruction index of the acquiring call (for diagnostics).
    pub insn_idx: usize,
}

/// Full verifier state for one explored path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifierState {
    /// Call frames; the last one is current. Copy-on-write: cloning a
    /// state bumps refcounts, and [`VerifierState::cur_mut`] unshares
    /// only the frame being mutated.
    pub frames: Vec<Rc<FuncState>>,
    /// Acquired, not-yet-released references.
    pub acquired_refs: Vec<RefState>,
}

impl VerifierState {
    /// Entry state of the main program.
    pub fn entry() -> VerifierState {
        VerifierState {
            frames: vec![Rc::new(FuncState::entry())],
            acquired_refs: Vec::new(),
        }
    }

    /// The current (innermost) frame.
    pub fn cur(&self) -> &FuncState {
        self.frames.last().expect("at least one frame")
    }

    /// Mutable current frame, unshared first if another state still
    /// holds it (copy-on-write).
    pub fn cur_mut(&mut self) -> &mut FuncState {
        Rc::make_mut(self.frames.last_mut().expect("at least one frame"))
    }

    /// Current call depth (0 = main).
    pub fn depth(&self) -> usize {
        self.frames.len() - 1
    }

    /// Registers a newly acquired reference and returns its id.
    pub fn acquire_ref(&mut self, next_id: &mut u32, insn_idx: usize) -> u32 {
        *next_id += 1;
        let id = *next_id;
        self.acquired_refs.push(RefState { id, insn_idx });
        id
    }

    /// Releases a reference; false if it was not held.
    pub fn release_ref(&mut self, id: u32) -> bool {
        let before = self.acquired_refs.len();
        self.acquired_refs.retain(|r| r.id != id);
        let released = self.acquired_refs.len() != before;
        if released {
            // Invalidate every register (in all frames) that held it,
            // unsharing only the frames that actually change.
            for frame in &mut self.frames {
                let regs_hit = frame.regs.iter().any(|r| r.ref_obj_id == id);
                let stack_hit = frame.stack.iter().any(|s| s.spilled.ref_obj_id == id);
                if !regs_hit && !stack_hit {
                    continue;
                }
                let frame = Rc::make_mut(frame);
                if regs_hit {
                    for r in &mut frame.regs {
                        if r.ref_obj_id == id {
                            *r = RegState::not_init();
                        }
                    }
                }
                if stack_hit {
                    for s in frame.stack_mut() {
                        if s.spilled.ref_obj_id == id {
                            *s = StackSlot::default();
                        }
                    }
                }
            }
        }
        released
    }

    /// Marks every register in every frame that shares `id` — used when a
    /// null check resolves a nullable pointer.
    pub fn for_each_reg_with_id(&mut self, id: u32, mut f: impl FnMut(&mut RegState)) {
        if id == 0 {
            return;
        }
        for frame in &mut self.frames {
            let regs_hit = frame.regs.iter().any(|r| r.id == id);
            let stack_hit = frame
                .stack
                .iter()
                .any(|s| s.is_full_spill() && s.spilled.id == id);
            if !regs_hit && !stack_hit {
                continue;
            }
            let frame = Rc::make_mut(frame);
            for r in &mut frame.regs {
                if r.id == id {
                    f(r);
                }
            }
            if stack_hit {
                for s in frame.stack_mut() {
                    if s.is_full_spill() && s.spilled.id == id {
                        f(&mut s.spilled);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_state_regs() {
        let st = VerifierState::entry();
        assert_eq!(st.cur().reg(Reg::R1).typ, RegType::PtrToCtx);
        assert_eq!(st.cur().reg(Reg::R10).typ, RegType::PtrToStack);
        assert_eq!(st.cur().reg(Reg::R0).typ, RegType::NotInit);
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn stack_index_mapping() {
        // fp-8 is the highest slot, byte 0.
        assert_eq!(FuncState::stack_index(-8), Some((0, 0)));
        assert_eq!(FuncState::stack_index(-1), Some((0, 7)));
        assert_eq!(FuncState::stack_index(-9), Some((1, 7)));
        assert_eq!(FuncState::stack_index(-16), Some((1, 0)));
        assert_eq!(FuncState::stack_index(-512), Some((63, 0)));
        assert_eq!(FuncState::stack_index(0), None);
        assert_eq!(FuncState::stack_index(-513), None);
        assert_eq!(FuncState::stack_index(8), None);
    }

    #[test]
    fn ref_acquire_release() {
        let mut st = VerifierState::entry();
        let mut next = 0;
        let id = st.acquire_ref(&mut next, 3);
        assert_eq!(id, 1);
        st.cur_mut().reg_mut(Reg::R0).ref_obj_id = id;
        assert!(st.release_ref(id));
        assert_eq!(st.cur().reg(Reg::R0).typ, RegType::NotInit);
        assert!(!st.release_ref(id), "double release detected");
    }

    #[test]
    fn id_correlation_touches_spills() {
        let mut st = VerifierState::entry();
        let mut r = RegState::pointer(RegType::PtrToMapValue { map_id: 0 });
        r.maybe_null = true;
        r.id = 7;
        *st.cur_mut().reg_mut(Reg::R3) = r;
        st.cur_mut().stack_mut()[0] = StackSlot {
            bytes: [StackByte::Spill; 8],
            spilled: r,
        };
        let mut count = 0;
        st.for_each_reg_with_id(7, |reg| {
            reg.maybe_null = false;
            count += 1;
        });
        assert_eq!(count, 2);
        assert!(!st.cur().reg(Reg::R3).maybe_null);
        assert!(!st.cur().stack[0].spilled.maybe_null);
    }

    #[test]
    fn clone_shares_frames_until_written() {
        let mut a = VerifierState::entry();
        let b = a.clone();
        assert!(Rc::ptr_eq(&a.frames[0], &b.frames[0]), "clone is a share");
        a.cur_mut().reg_mut(Reg::R0).id = 9;
        assert!(
            !Rc::ptr_eq(&a.frames[0], &b.frames[0]),
            "write unshares the frame"
        );
        assert_eq!(b.cur().reg(Reg::R0).id, 0, "reader unaffected");
        // A register write leaves the stack itself shared…
        assert!(Rc::ptr_eq(&a.frames[0].stack, &b.frames[0].stack));
        // …until the stack is written.
        a.cur_mut().stack_mut()[0].bytes[0] = StackByte::Misc;
        assert!(!Rc::ptr_eq(&a.frames[0].stack, &b.frames[0].stack));
        assert_eq!(b.cur().stack[0].bytes[0], StackByte::Invalid);
    }

    #[test]
    fn clobber_caller_saved() {
        let mut f = FuncState::entry();
        *f.reg_mut(Reg::R6) = RegState::known_scalar(1);
        *f.reg_mut(Reg::R3) = RegState::known_scalar(2);
        f.clobber_caller_saved();
        assert_eq!(f.reg(Reg::R3).typ, RegType::NotInit);
        assert_eq!(f.reg(Reg::R6).const_value(), Some(1), "callee-saved kept");
        assert_eq!(f.reg(Reg::R10).typ, RegType::PtrToStack);
    }
}
