//! BVF's memory-access sanitation instrumentation (paper §4.2, Figure 5).
//!
//! Runs at the end of the rewrite phase over a verified program: every
//! interesting load/store is preceded by a dispatch to the KASAN-covered
//! `bpf_asan_*` kernel functions, and every pointer-ALU instruction with a
//! verifier-computed `alu_limit` gets a runtime assertion. The dispatch is
//! realized entirely at the eBPF instruction level:
//!
//! ```text
//! *(u64 *)(r10 - 520) = r0      ; back up r0 (call clobbers it)
//! r11 = r1                      ; back up r1 into the auxiliary register
//! r1 = <base>                   ; target address ...
//! r1 += <off>                   ; ... of the access
//! call bpf_asan_load8           ; check against the shadow
//! r0 = *(u64 *)(r10 - 520)      ; restore
//! r1 = r11                      ; restore
//! r3 = *(u64 *)(r1 + off)       ; the original access
//! ```
//!
//! Instrumentation-reduction strategy (paper §4.2): `R10`-based
//! constant-offset accesses are provably in bounds and skipped, and
//! instructions emitted by other rewrite passes are skipped.

use bvf_isa::{asm, AluOp, CallTarget, Insn, InsnKind, Program, Reg, Size};
use bvf_kernel_sim::helpers::asan::ids as asan_ids;
use serde::{Deserialize, Serialize};

use crate::env::{InsnMeta, VerifiedProgram};

/// Extended-stack slot (below the architectural 512 bytes) for the `R0`
/// backup.
pub const EXT_SLOT_R0: i16 = -520;
/// Extended-stack slot for the `R2` backup (alu-limit checks).
pub const EXT_SLOT_R2: i16 = -528;
/// Extra stack bytes the runtime must provision below the architectural
/// stack for the instrumentation's spill area.
pub const EXT_STACK_BYTES: u32 = 64;

/// Counters describing one instrumentation run (consumed by the overhead
/// experiment of §6.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizeStats {
    /// Instruction slots before instrumentation.
    pub insns_before: usize,
    /// Instruction slots after instrumentation.
    pub insns_after: usize,
    /// Memory accesses dispatched to `bpf_asan_*`.
    pub mem_checks: usize,
    /// Pointer-ALU instructions given runtime `alu_limit` assertions.
    pub alu_checks: usize,
    /// Accesses skipped by the `R10`-constant reduction.
    pub skipped_stack_const: usize,
    /// Instructions skipped because a rewrite pass emitted them.
    pub skipped_rewrite_emitted: usize,
}

impl SanitizeStats {
    /// Instruction-footprint growth factor.
    pub fn footprint_factor(&self) -> f64 {
        if self.insns_before == 0 {
            1.0
        } else {
            self.insns_after as f64 / self.insns_before as f64
        }
    }
}

/// Instrumentation failure: the program grew past what 16-bit jump
/// displacements can express.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizeError(pub String);

impl std::fmt::Display for SanitizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sanitize: {}", self.0)
    }
}

impl std::error::Error for SanitizeError {}

fn mem_access_parts(kind: &InsnKind) -> Option<(Reg, i16, u32, bool)> {
    // (base, off, size_bytes, is_write)
    match *kind {
        InsnKind::Ldx { size, src, off, .. } => Some((src, off, size.bytes(), false)),
        InsnKind::St { size, dst, off, .. } => Some((dst, off, size.bytes(), true)),
        InsnKind::Stx { size, dst, off, .. } => Some((dst, off, size.bytes(), true)),
        InsnKind::Atomic { size, dst, off, .. } => Some((dst, off, size.bytes(), true)),
        _ => None,
    }
}

fn mem_prologue(orig_pc: usize, base: Reg, off: i16, size_bytes: u32, is_write: bool) -> Vec<Insn> {
    let fn_id = if is_write {
        asan_ids::store_fn(size_bytes)
    } else {
        asan_ids::load_fn(size_bytes)
    };
    let mut call = asm::call_helper(fn_id as i32);
    call.off = orig_pc as i16;
    vec![
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R0, EXT_SLOT_R0),
        asm::mov64_reg(Reg::Ax, Reg::R1),
        asm::mov64_reg(Reg::R1, base),
        asm::alu64_imm(AluOp::Add, Reg::R1, off as i32),
        call,
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R10, EXT_SLOT_R0),
        asm::mov64_reg(Reg::R1, Reg::Ax),
    ]
}

fn alu_prologue(
    orig_pc: usize,
    scalar_reg: Reg,
    limit: u64,
    downward: bool,
    negate: bool,
) -> Vec<Insn> {
    let fn_id = if downward {
        asan_ids::ALU_CHECK_DOWN
    } else {
        asan_ids::ALU_CHECK_UP
    };
    let mut call = asm::call_helper(fn_id as i32);
    call.off = orig_pc as i16;
    let mut v = vec![
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R0, EXT_SLOT_R0),
        asm::stx_mem(Size::Dw, Reg::R10, Reg::R2, EXT_SLOT_R2),
        asm::mov64_reg(Reg::Ax, Reg::R1),
        asm::mov64_reg(Reg::R1, scalar_reg),
    ];
    if negate {
        // `SUB` moves the pointer opposite to the operand's sign; hand
        // the check the signed movement.
        v.push(asm::neg64(Reg::R1));
    }
    v.extend(asm::ld_imm64(Reg::R2, limit));
    v.push(call);
    v.push(asm::ldx_mem(Size::Dw, Reg::R2, Reg::R10, EXT_SLOT_R2));
    v.push(asm::ldx_mem(Size::Dw, Reg::R0, Reg::R10, EXT_SLOT_R0));
    v.push(asm::mov64_reg(Reg::R1, Reg::Ax));
    v
}

/// Applies the sanitation instrumentation to a verified program,
/// returning the instrumented program, its per-slot metadata, and the
/// instrumentation statistics.
pub fn instrument(
    vprog: &VerifiedProgram,
) -> Result<(Program, Vec<InsnMeta>, SanitizeStats), SanitizeError> {
    let insns = vprog.prog.insns();
    let n = insns.len();
    let mut stats = SanitizeStats {
        insns_before: n,
        ..Default::default()
    };

    // Pass 1: per original instruction-start, the prologue to inject.
    let mut prologues: Vec<Vec<Insn>> = vec![Vec::new(); n];
    // `ex_handled` flag for the asan call of slot i's prologue.
    let mut pro_ex: Vec<bool> = vec![false; n];
    let mut slots_of: Vec<usize> = vec![1; n];
    let mut is_start = vec![false; n];
    let mut pc = 0;
    while pc < n {
        is_start[pc] = true;
        let (kind, slots) = vprog
            .prog
            .decode_at(pc)
            .map_err(|e| SanitizeError(format!("undecodable insn {pc}: {e}")))?;
        slots_of[pc] = slots;
        let meta = vprog.insn_meta.get(pc).copied().unwrap_or_default();
        if meta.emitted_by_rewrite {
            stats.skipped_rewrite_emitted += 1;
        } else if meta.stack_const {
            stats.skipped_stack_const += 1;
        } else if meta.sanitize_mem {
            if let Some((base, off, size_bytes, is_write)) = mem_access_parts(&kind) {
                prologues[pc] = mem_prologue(pc, base, off, size_bytes, is_write);
                pro_ex[pc] = meta.ex_handled;
                stats.mem_checks += 1;
            }
        }
        if let Some(l) = meta.alu_limit {
            if !meta.emitted_by_rewrite {
                prologues[pc] = alu_prologue(pc, l.scalar_reg, l.limit, l.downward, l.negate);
                stats.alu_checks += 1;
            }
        }
        pc += slots;
    }

    // Pass 2: new start positions.
    let mut new_start = vec![0usize; n + 1];
    let mut acc = 0usize;
    let mut pc = 0;
    while pc < n {
        new_start[pc] = acc;
        if is_start[pc] {
            acc += prologues[pc].len() + slots_of[pc];
            pc += slots_of[pc];
        } else {
            pc += 1;
        }
    }
    new_start[n] = acc;

    // Pass 3: emit, rewriting jump displacements.
    let mut out: Vec<Insn> = Vec::with_capacity(acc);
    let mut meta_out: Vec<InsnMeta> = Vec::with_capacity(acc);
    let mut pc = 0;
    while pc < n {
        let (kind, slots) = vprog.prog.decode_at(pc).expect("decoded in pass 1");
        for (i, ins) in prologues[pc].iter().enumerate() {
            out.push(*ins);
            let mut m = InsnMeta {
                emitted_by_rewrite: true,
                ..Default::default()
            };
            // The asan call carries the original access's extable status.
            if ins.code == asm::call_helper(0).code
                && asan_ids::is_asan(ins.imm as u32)
                && i + 3 <= prologues[pc].len()
            {
                m.ex_handled = pro_ex[pc];
            }
            meta_out.push(m);
        }
        let insn_pos = new_start[pc] + prologues[pc].len();
        debug_assert_eq!(insn_pos, out.len());

        let mut patched: Vec<Insn> = insns[pc..pc + slots].to_vec();
        let retarget = |target_old: i64| -> Result<i64, SanitizeError> {
            if target_old < 0 || target_old as usize > n {
                return Err(SanitizeError(format!(
                    "jump target {target_old} out of range"
                )));
            }
            Ok(new_start[target_old as usize] as i64 - (insn_pos as i64 + 1))
        };
        match kind {
            InsnKind::JmpCond { off, .. } => {
                let new_off = retarget(pc as i64 + 1 + off as i64)?;
                patched[0].off = i16::try_from(new_off)
                    .map_err(|_| SanitizeError("jump displacement overflow".into()))?;
            }
            InsnKind::Ja { off } => {
                let new_off = retarget(pc as i64 + 1 + off as i64)?;
                if bvf_isa::Class::of(patched[0].code) == bvf_isa::Class::Jmp32 {
                    patched[0].imm = i32::try_from(new_off)
                        .map_err(|_| SanitizeError("jump displacement overflow".into()))?;
                } else {
                    patched[0].off = i16::try_from(new_off)
                        .map_err(|_| SanitizeError("jump displacement overflow".into()))?;
                }
            }
            InsnKind::Call {
                target: CallTarget::Pseudo(off),
            } => {
                let new_off = retarget(pc as i64 + 1 + off as i64)?;
                patched[0].imm = i32::try_from(new_off)
                    .map_err(|_| SanitizeError("call displacement overflow".into()))?;
            }
            _ => {}
        }
        for (i, ins) in patched.into_iter().enumerate() {
            out.push(ins);
            let mut m = vprog.insn_meta.get(pc + i).copied().unwrap_or_default();
            m.alu_limit = None; // consumed by the prologue
            meta_out.push(m);
        }
        pc += slots;
    }

    stats.insns_after = out.len();
    Ok((Program::from_insns(out), meta_out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvf_isa::JmpOp;
    use bvf_kernel_sim::helpers::proto::ids as helper;
    use bvf_kernel_sim::map::{MapDef, MapType};
    use bvf_kernel_sim::progtype::ProgType;
    use bvf_kernel_sim::{BugSet, Kernel};

    fn kernel() -> Kernel {
        let mut k = Kernel::new(BugSet::none());
        let mut maps = std::mem::take(&mut k.maps);
        maps.create(
            &mut k.mm,
            MapDef {
                map_type: MapType::Array,
                key_size: 4,
                value_size: 16,
                max_entries: 4,
            },
        )
        .unwrap();
        k.maps = maps;
        k
    }

    fn verify_ok(k: &Kernel, insns: Vec<Insn>) -> VerifiedProgram {
        let p = Program::from_insns(insns);
        crate::verify(
            k,
            &p,
            ProgType::SocketFilter,
            &crate::VerifierOpts::default(),
        )
        .result
        .expect("test program must verify")
    }

    fn map_deref_prog() -> Vec<Insn> {
        let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
        insns.extend(asm::ld_map_fd(Reg::R1, 0));
        insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
        insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
        insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
        insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
        insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 1));
        insns.push(asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 0));
        insns.push(asm::mov64_imm(Reg::R0, 0));
        insns.push(asm::exit());
        insns
    }

    #[test]
    fn instruments_map_value_access_only() {
        let k = kernel();
        let vp = verify_ok(&k, map_deref_prog());
        let (prog, meta, stats) = instrument(&vp).unwrap();
        // Two checks: the stack store through R2 (a stack pointer, but not
        // the literal R10 base the reduction strategy recognizes) and the
        // map-value dereference.
        assert_eq!(stats.mem_checks, 2);
        assert_eq!(stats.skipped_stack_const, 0);
        let _ = (&prog, &meta);
    }

    #[test]
    fn footprint_and_jump_retargeting() {
        let k = kernel();
        let vp = verify_ok(&k, map_deref_prog());
        let before = vp.prog.insn_count();
        let (prog, meta, stats) = instrument(&vp).unwrap();
        assert_eq!(stats.insns_before, before);
        assert!(stats.insns_after > before);
        assert_eq!(meta.len(), prog.insn_count());
        // The rewritten program still decodes fully.
        assert!(prog.iter_decoded().all(|(_, r)| r.is_ok()));
        // And the conditional jump still lands on an instruction start.
        let mut found_jump = false;
        for (pc, res) in prog.iter_decoded() {
            if let Ok((InsnKind::JmpCond { off, .. }, _)) = res {
                let target = (pc as i64 + 1 + off as i64) as usize;
                assert!(target < prog.insn_count());
                found_jump = true;
                // Target must be the prologue start of the exit path insn.
                let (k2, _) = prog.decode_at(target).unwrap();
                // mov r0, 0 — the first insn of the false branch.
                assert!(matches!(
                    k2,
                    InsnKind::AluImm { op: AluOp::Mov, .. } | InsnKind::Stx { .. }
                ));
            }
        }
        assert!(found_jump);
    }

    #[test]
    fn r10_const_accesses_skipped() {
        let k = kernel();
        let vp = verify_ok(
            &k,
            vec![
                asm::mov64_imm(Reg::R1, 5),
                asm::stx_mem(Size::Dw, Reg::R10, Reg::R1, -8),
                asm::ldx_mem(Size::Dw, Reg::R0, Reg::R10, -8),
                asm::exit(),
            ],
        );
        let (_, _, stats) = instrument(&vp).unwrap();
        assert_eq!(stats.mem_checks, 0);
        assert_eq!(stats.skipped_stack_const, 2);
        assert_eq!(stats.insns_before, stats.insns_after);
    }

    #[test]
    fn prologue_shape_matches_figure_5() {
        let k = kernel();
        let vp = verify_ok(&k, map_deref_prog());
        let (prog, meta, _) = instrument(&vp).unwrap();
        // Find the asan call and check the surrounding sequence.
        let mut call_pc = None;
        for (pc, res) in prog.iter_decoded() {
            if let Ok((
                InsnKind::Call {
                    target: CallTarget::Helper(id),
                },
                _,
            )) = res
            {
                if asan_ids::is_asan(id as u32) {
                    call_pc = Some(pc);
                }
            }
        }
        let call_pc = call_pc.expect("asan call present");
        assert!(meta[call_pc].emitted_by_rewrite);
        // Two insns before: `r1 = base`; one after: `r0 = *(u64*)(r10-520)`.
        let insns = prog.insns();
        assert_eq!(
            insns[call_pc - 4].code,
            asm::stx_mem(Size::Dw, Reg::R10, Reg::R0, EXT_SLOT_R0).code
        );
        assert_eq!(insns[call_pc - 4].off, EXT_SLOT_R0);
        assert_eq!(insns[call_pc - 3].dst, Reg::Ax.as_u8());
        assert_eq!(insns[call_pc + 1].off, EXT_SLOT_R0);
        assert_eq!(insns[call_pc + 2].src, Reg::Ax.as_u8());
        // The call carries the original pc in its off field.
        assert!(insns[call_pc].off >= 0);
    }

    #[test]
    fn alu_limit_check_emitted_for_variable_ptr_arith() {
        let k = kernel();
        // Bounded variable offset into a map value.
        let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
        insns.extend(asm::ld_map_fd(Reg::R1, 0));
        insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
        insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
        insns.push(asm::st_mem(Size::W, Reg::R2, 0, 1));
        insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
        insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 4));
        insns.push(asm::ldx_mem(Size::W, Reg::R4, Reg::R0, 0));
        insns.push(asm::alu64_imm(AluOp::And, Reg::R4, 7));
        insns.push(asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R4));
        insns.push(asm::ldx_mem(Size::B, Reg::R5, Reg::R0, 0));
        insns.push(asm::mov64_imm(Reg::R0, 0));
        insns.push(asm::exit());
        let vp = verify_ok(&k, insns);
        let (_, _, stats) = instrument(&vp).unwrap();
        assert_eq!(stats.alu_checks, 1);
        assert!(stats.mem_checks >= 2);
    }
}
