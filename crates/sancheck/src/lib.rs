//! `bvf-sancheck` — sanitizer self-validation.
//!
//! Every Indicator #1 finding rests on trusting the `bpf_asan_*`
//! sanitation layer, yet that instrument is itself a program that can be
//! wrong in both directions: a false positive aborts an execution the
//! bare kernel completes, a false negative waves through an access the
//! shadow should have rejected. UBfuzz showed real sanitizer
//! implementations harbor both classes. This crate turns the repo's own
//! differential methodology onto the instrument: run each
//! verifier-accepted program **twice on the same kernel** — once
//! sanitized, once unsanitized — and flag any disagreement beyond the
//! documented instrumentation delta as a
//! [`KernelReport::SanitizerDivergence`].
//!
//! The dual-execution contract (DESIGN.md §7) allows exactly three
//! deltas between the runs:
//!
//! 1. **Step overhead** — the sanitized image executes extra
//!    rewrite-emitted instructions, counted precisely by
//!    `instrumented_steps`; `san.steps - san.instrumented_steps` must
//!    equal the unsanitized step count.
//! 2. **Fault conversion** — a bad access the sanitizer traps
//!    ([`HaltReason::SanitizerTrap`]) may appear in the unsanitized run
//!    as a hard page fault *for the same address and polarity*, or not
//!    at all (pool-resident poison is silent raw).
//! 3. **Register scratch** — the instrumentation may use `Ax` and the
//!    extended stack, neither of which is program-observable.
//!
//! Anything else — a different exit value, helper trace, step count, or
//! fault metadata — is a bug in the sanitation layer (or the rewrite),
//! classified by [`SanDivergenceKind`].
//!
//! The paired **defect matrix** ([`matrix_cases`]) arms one seeded
//! sanitizer defect ([`SanDefect`]) at a time and asserts the oracle's
//! verdict flips against a committed reproducer: false-positive defects
//! make a divergence *appear* on a clean program, false-negative defects
//! make the divergence a planted bad access normally produces
//! *disappear*.

#![warn(missing_docs)]

use bvf_isa::{asm, AluOp, Insn, JmpOp, Reg, Size};
use bvf_kernel_sim::helpers::proto::ids as helper;
use bvf_kernel_sim::progtype::ProgType;
use bvf_kernel_sim::report::SanDivergenceKind;
use bvf_kernel_sim::sandefect::SanDefect;
use bvf_kernel_sim::{BugId, BugSet, KernelReport, ReportOrigin};
use bvf_runtime::{Backend, HaltReason};
use serde::{Deserialize, Serialize};

/// One execution's comparator-relevant observations, borrowed from
/// whatever outcome structure produced them.
#[derive(Debug, Clone, Copy)]
pub struct RunView<'a> {
    /// Why execution halted; `None` when the trigger produced no direct
    /// execution result (attach-style triggers).
    pub halt: Option<HaltReason>,
    /// FNV fold of the observable execution (helper/kfunc returns, exit
    /// value); instrumentation-invariant by construction.
    pub exec_hash: u64,
    /// Interpreter steps executed.
    pub steps: u64,
    /// Executed instructions emitted by the sanitation rewrite.
    pub instrumented_steps: u64,
    /// Real helper invocations.
    pub helper_calls: u64,
    /// Kfunc invocations.
    pub kfunc_calls: u64,
    /// Kernel reports the run produced.
    pub reports: &'a [KernelReport],
}

/// Deterministic counters for the dual-execution oracle. All fields are
/// additive so per-worker stats merge by summation in any order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanStats {
    /// Dual-runs compared (one sanitized + one unsanitized execution).
    pub runs: u64,
    /// Total divergences flagged.
    pub divergences: u64,
    /// Exit-value / helper-trace mismatches.
    pub exec_mismatch: u64,
    /// Step-contract violations.
    pub step_mismatch: u64,
    /// Sanitizer aborts on programs the raw run completes.
    pub san_abort: u64,
    /// Raw faults the sanitized run masked.
    pub masked_fault: u64,
    /// Hard faults at sanitized program accesses.
    pub unchecked_access: u64,
    /// Fault-metadata disagreements.
    pub fault_meta_mismatch: u64,
}

impl SanStats {
    /// Folds another run's counters into `self` (order-independent).
    pub fn merge(&mut self, other: &SanStats) {
        self.runs += other.runs;
        self.divergences += other.divergences;
        self.exec_mismatch += other.exec_mismatch;
        self.step_mismatch += other.step_mismatch;
        self.san_abort += other.san_abort;
        self.masked_fault += other.masked_fault;
        self.unchecked_access += other.unchecked_access;
        self.fault_meta_mismatch += other.fault_meta_mismatch;
    }

    /// Counts one divergence of the given kind.
    pub fn record(&mut self, kind: SanDivergenceKind) {
        self.divergences += 1;
        match kind {
            SanDivergenceKind::ExecMismatch => self.exec_mismatch += 1,
            SanDivergenceKind::StepMismatch => self.step_mismatch += 1,
            SanDivergenceKind::SanAbort => self.san_abort += 1,
            SanDivergenceKind::MaskedFault => self.masked_fault += 1,
            SanDivergenceKind::UncheckedAccess => self.unchecked_access += 1,
            SanDivergenceKind::FaultMetaMismatch => self.fault_meta_mismatch += 1,
        }
    }

    /// Sum of the per-kind counters (must equal `divergences`).
    pub fn kind_total(&self) -> u64 {
        self.exec_mismatch
            + self.step_mismatch
            + self.san_abort
            + self.masked_fault
            + self.unchecked_access
            + self.fault_meta_mismatch
    }
}

/// The program-access fault metadata a run observed: `(addr, is_write)`
/// of its KASAN report (sanitized runs) or hard page fault (raw runs).
fn kasan_fault(reports: &[KernelReport]) -> Option<(u64, bool)> {
    reports.iter().rev().find_map(|r| match r {
        KernelReport::Kasan {
            addr,
            is_write,
            origin: ReportOrigin::ProgramAccess,
            ..
        } => Some((*addr, *is_write)),
        _ => None,
    })
}

fn page_fault(reports: &[KernelReport]) -> Option<(u64, bool)> {
    reports.iter().rev().find_map(|r| match r {
        KernelReport::PageFault {
            addr,
            is_write,
            origin: ReportOrigin::ProgramAccess,
        } => Some((*addr, *is_write)),
        _ => None,
    })
}

/// Whether a report is allowed to differ between the runs: program-access
/// fault evidence (a sanitizer trap or the raw fault it converts to) and
/// oracle-layer reports that only the sanitized run can produce (the diff
/// oracle's state divergences, prior sancheck verdicts).
fn is_pa_evidence(r: &KernelReport) -> bool {
    matches!(
        r,
        KernelReport::Kasan {
            origin: ReportOrigin::ProgramAccess,
            ..
        } | KernelReport::PageFault {
            origin: ReportOrigin::ProgramAccess,
            ..
        } | KernelReport::AluLimitViolation { .. }
            | KernelReport::StateDivergence { .. }
            | KernelReport::SanitizerDivergence { .. }
    )
}

fn shared_reports_differ(san: &RunView, unsan: &RunView) -> bool {
    let s: Vec<&KernelReport> = san.reports.iter().filter(|r| !is_pa_evidence(r)).collect();
    let u: Vec<&KernelReport> = unsan
        .reports
        .iter()
        .filter(|r| !is_pa_evidence(r))
        .collect();
    s != u
}

/// Compares a sanitized run against the unsanitized run of the same
/// scenario and returns the divergences (at most one — the scan stops at
/// the first, like the state-divergence oracle).
pub fn compare(san: &RunView, unsan: &RunView) -> Vec<KernelReport> {
    let div = |kind: SanDivergenceKind, detail: String| {
        vec![KernelReport::SanitizerDivergence { kind, detail }]
    };

    match (san.halt, unsan.halt) {
        // The sanitized run hard-faulted at a program access: whatever
        // the raw run did, the sanitizer failed to intercept the access
        // it exists to check — unless the raw run faulted identically
        // (an access class the instrumentation documents as unchecked).
        (Some(HaltReason::PageFault), u) => {
            let sf = page_fault(san.reports);
            let uf = page_fault(unsan.reports);
            if u == Some(HaltReason::PageFault) {
                if sf != uf {
                    return div(
                        SanDivergenceKind::FaultMetaMismatch,
                        format!("san page fault {sf:?} vs unsan {uf:?}"),
                    );
                }
            } else {
                return div(
                    SanDivergenceKind::UncheckedAccess,
                    format!("sanitized run page-faulted at {sf:?}, unsanitized halt {u:?}"),
                );
            }
        }
        // Sanitizer abort: legitimate only as the checked conversion of
        // a raw fault at the same address and polarity.
        (Some(HaltReason::SanitizerTrap), Some(HaltReason::PageFault)) => {
            let sf = kasan_fault(san.reports);
            let uf = page_fault(unsan.reports);
            if let (Some(s), Some(u)) = (sf, uf) {
                if s != u {
                    return div(
                        SanDivergenceKind::FaultMetaMismatch,
                        format!("san kasan {s:?} vs unsan page fault {u:?}"),
                    );
                }
            }
        }
        (Some(HaltReason::SanitizerTrap), u) => {
            return div(
                SanDivergenceKind::SanAbort,
                format!(
                    "sanitizer aborted ({:?}); unsanitized run halt {u:?}",
                    kasan_fault(san.reports)
                ),
            );
        }
        // The sanitized run completed past a fault the raw kernel oopses
        // on: the sanitizer masked it.
        (s, Some(HaltReason::PageFault)) => {
            return div(
                SanDivergenceKind::MaskedFault,
                format!(
                    "unsanitized run page-faulted at {:?}; sanitized halt {s:?}",
                    page_fault(unsan.reports)
                ),
            );
        }
        (Some(HaltReason::Exit), Some(HaltReason::Exit)) => {
            if san.exec_hash != unsan.exec_hash
                || san.helper_calls != unsan.helper_calls
                || san.kfunc_calls != unsan.kfunc_calls
            {
                return div(
                    SanDivergenceKind::ExecMismatch,
                    format!(
                        "exec hash {:#x}/{:#x} helpers {}/{} kfuncs {}/{}",
                        san.exec_hash,
                        unsan.exec_hash,
                        san.helper_calls,
                        unsan.helper_calls,
                        san.kfunc_calls,
                        unsan.kfunc_calls
                    ),
                );
            }
            if san.steps - san.instrumented_steps != unsan.steps || unsan.instrumented_steps != 0 {
                return div(
                    SanDivergenceKind::StepMismatch,
                    format!(
                        "san {} steps ({} instrumented) vs unsan {} steps ({} instrumented)",
                        san.steps, san.instrumented_steps, unsan.steps, unsan.instrumented_steps
                    ),
                );
            }
        }
        (s, u) if s != u => {
            return div(
                SanDivergenceKind::ExecMismatch,
                format!("halt {s:?} vs {u:?}"),
            );
        }
        // Equal non-Exit halts (both step-limited, both fatal kernel
        // reports, or attach-style triggers with no execution result):
        // the shared-machinery reports must agree.
        _ => {}
    }

    if shared_reports_differ(san, unsan) {
        return div(
            SanDivergenceKind::ExecMismatch,
            format!(
                "kernel-routine reports differ: san {} vs unsan {}",
                san.reports.len(),
                unsan.reports.len()
            ),
        );
    }
    Vec::new()
}

/// One committed reproducer of the sanitizer-defect matrix.
///
/// Each case pairs an injectable [`SanDefect`] with a program whose
/// dual-run verdict *flips* when the defect is armed. For
/// false-positive defects the divergence appears only with the defect
/// (`divergence_with_defect = true`); for false-negative defects the
/// case plants a verifier-admitted bad access whose divergence the
/// correct sanitizer produces and the defective one silently loses
/// (`divergence_with_defect = false`).
#[derive(Debug, Clone)]
pub struct MatrixCase {
    /// The sanitizer defect under test.
    pub defect: SanDefect,
    /// Kernel/verifier bugs the reproducer needs (to plant a
    /// verifier-admitted bad access); empty for clean-program cases.
    pub bugs: BugSet,
    /// Program type to load the reproducer as.
    pub prog_type: ProgType,
    /// The reproducer's instruction stream.
    pub insns: Vec<Insn>,
    /// Map seeding `(fd, key_le, value_le)` applied before the run.
    pub map_seed: Vec<(u32, Vec<u8>, Vec<u8>)>,
    /// Whether the divergence appears when the defect is armed (false
    /// positive) or only when it is disarmed (false negative).
    pub divergence_with_defect: bool,
    /// The divergence kind expected in whichever arm diverges.
    pub expect_kind: SanDivergenceKind,
    /// Execution backend the reproducer requires, or `None` to run on
    /// whatever backend the matrix runner was asked to use. Compile-layer
    /// defects (e.g. [`SanDefect::FusedCheckElision`]) only exist in the
    /// compiled engine and pin `Some(Backend::Compiled)`.
    pub backend: Option<Backend>,
}

/// Stack-key prologue: `r2 = r10 - 8` with the key value stored.
fn stack_key(insns: &mut Vec<Insn>, size: Size, key: i32) {
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::st_mem(size, Reg::R2, 0, key));
}

/// `r0 = lookup(map fd, stack key)`.
fn lookup(insns: &mut Vec<Insn>, fd: i32, key_size: Size, key: i32) {
    insns.extend(asm::ld_map_fd(Reg::R1, fd));
    stack_key(insns, key_size, key);
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
}

fn seed_hash_entry() -> (u32, Vec<u8>, Vec<u8>) {
    (1, 5u64.to_le_bytes().to_vec(), vec![0u8; 16])
}

fn seed_array_word(word: u32) -> (u32, Vec<u8>, Vec<u8>) {
    let mut value = word.to_le_bytes().to_vec();
    value.resize(16, 0);
    (0, 0u32.to_le_bytes().to_vec(), value)
}

/// The committed sanitizer-defect matrix, one case per [`SanDefect`], in
/// [`SanDefect::ALL`] order.
pub fn matrix_cases() -> Vec<MatrixCase> {
    let mut cases = Vec::new();

    // redzone-width: an 8-byte read ending flush with a hash node — the
    // defective size+1 check trips the neighboring redzone.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    lookup(&mut insns, 1, Size::Dw, 5);
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 3));
    insns.push(asm::ldx_mem(Size::Dw, Reg::R3, Reg::R0, 8));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    cases.push(MatrixCase {
        defect: SanDefect::RedzoneWidth,
        bugs: BugSet::none(),
        prog_type: ProgType::SocketFilter,
        insns,
        map_seed: vec![seed_hash_entry()],
        divergence_with_defect: true,
        expect_kind: SanDivergenceKind::SanAbort,
        backend: None,
    });

    // write-polarity: CVE-2022-23222 store through null+8 — both runs
    // fault, but the defective dispatch reports the store as a read.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    insns.extend(asm::ld_map_fd(Reg::R1, 0));
    stack_key(&mut insns, Size::W, 99); // miss → null
    insns.push(asm::call_helper(helper::MAP_LOOKUP_ELEM as i32));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R0, 8));
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 3));
    insns.push(asm::st_mem(Size::Dw, Reg::R0, -8, 7));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    cases.push(MatrixCase {
        defect: SanDefect::WritePolarity,
        bugs: BugSet::with(&[BugId::CveAluOnNullablePtr]),
        prog_type: ProgType::SocketFilter,
        insns,
        map_seed: Vec::new(),
        divergence_with_defect: true,
        expect_kind: SanDivergenceKind::FaultMetaMismatch,
        backend: None,
    });

    // ex-handled-swallow: a use-after-free *store* the correct sanitizer
    // aborts on — the defective gate treats the flagged access as
    // extable-fixable, swallows the report, and the store lands silently
    // just like the unsanitized run.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    lookup(&mut insns, 1, Size::Dw, 5);
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 8));
    insns.push(asm::mov64_reg(Reg::R6, Reg::R0));
    insns.extend(asm::ld_map_fd(Reg::R1, 1));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::call_helper(helper::MAP_DELETE_ELEM as i32));
    insns.push(asm::st_mem(Size::Dw, Reg::R6, 0, 7));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    cases.push(MatrixCase {
        defect: SanDefect::ExHandledSwallow,
        bugs: BugSet::none(),
        prog_type: ProgType::SocketFilter,
        insns,
        map_seed: vec![seed_hash_entry()],
        divergence_with_defect: false,
        expect_kind: SanDivergenceKind::SanAbort,
        backend: None,
    });

    // alu-bound-flip: pointer arithmetic landing exactly on the
    // verifier-computed limit (scalar masked to {0,16}, runtime 16,
    // limit = value_size 16) — the strict comparison rejects it.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    lookup(&mut insns, 0, Size::W, 0);
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 4));
    insns.push(asm::ldx_mem(Size::W, Reg::R1, Reg::R0, 0));
    insns.push(asm::alu64_imm(AluOp::And, Reg::R1, 16));
    insns.push(asm::alu64_reg(AluOp::Add, Reg::R0, Reg::R1));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    cases.push(MatrixCase {
        defect: SanDefect::AluBoundFlip,
        bugs: BugSet::none(),
        prog_type: ProgType::SocketFilter,
        insns,
        map_seed: vec![seed_array_word(16)],
        divergence_with_defect: true,
        expect_kind: SanDivergenceKind::SanAbort,
        backend: None,
    });

    // stale-shadow-free: lookup → delete → use. The correct sanitizer
    // traps the UAF read; with the poison defect the read passes and the
    // divergence disappears.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    lookup(&mut insns, 1, Size::Dw, 5);
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 8));
    insns.push(asm::mov64_reg(Reg::R6, Reg::R0));
    insns.extend(asm::ld_map_fd(Reg::R1, 1));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::call_helper(helper::MAP_DELETE_ELEM as i32));
    insns.push(asm::ldx_mem(Size::Dw, Reg::R3, Reg::R6, 0));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    cases.push(MatrixCase {
        defect: SanDefect::StaleShadowFree,
        bugs: BugSet::none(),
        prog_type: ProgType::SocketFilter,
        insns,
        map_seed: vec![seed_hash_entry()],
        divergence_with_defect: false,
        expect_kind: SanDivergenceKind::SanAbort,
        backend: None,
    });

    // load-size-confusion: bug #2's straddling read (8 bytes at task
    // offset 124 of a 128-byte object). The correct sanitizer flags the
    // redzone half; the halved check passes the first half and the
    // divergence disappears.
    let insns = vec![
        asm::call_helper(helper::GET_CURRENT_TASK_BTF as i32),
        asm::ldx_mem(Size::Dw, Reg::R0, Reg::R0, 124),
        asm::exit(),
    ];
    cases.push(MatrixCase {
        defect: SanDefect::LoadSizeConfusion,
        bugs: BugSet::with(&[BugId::TaskStructOob]),
        prog_type: ProgType::Kprobe,
        insns,
        map_seed: Vec::new(),
        divergence_with_defect: false,
        expect_kind: SanDivergenceKind::SanAbort,
        backend: None,
    });

    // alu-direction-flip: downward pointer movement (runtime -8 against
    // limit 8) — with the direction term dropped, the negative operand
    // is rejected outright.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    lookup(&mut insns, 0, Size::W, 0);
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 5));
    insns.push(asm::ldx_mem(Size::W, Reg::R1, Reg::R0, 0));
    insns.push(asm::alu64_imm(AluOp::And, Reg::R1, 8));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R0, 8));
    insns.push(asm::alu64_reg(AluOp::Sub, Reg::R0, Reg::R1));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    cases.push(MatrixCase {
        defect: SanDefect::AluDirectionFlip,
        bugs: BugSet::none(),
        prog_type: ProgType::SocketFilter,
        insns,
        map_seed: vec![seed_array_word(8)],
        divergence_with_defect: true,
        expect_kind: SanDivergenceKind::SanAbort,
        backend: None,
    });

    // scratch-clobber: r0 = 42 is live across an instrumented load; the
    // clobbered spill slot restores garbage and the exit value changes.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    lookup(&mut insns, 0, Size::W, 0);
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 4));
    insns.push(asm::mov64_reg(Reg::R6, Reg::R0));
    insns.push(asm::mov64_imm(Reg::R0, 42));
    insns.push(asm::ldx_mem(Size::W, Reg::R1, Reg::R6, 0));
    insns.push(asm::exit());
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    cases.push(MatrixCase {
        defect: SanDefect::ScratchClobber,
        bugs: BugSet::none(),
        prog_type: ProgType::SocketFilter,
        insns,
        map_seed: vec![seed_array_word(0)],
        divergence_with_defect: true,
        expect_kind: SanDivergenceKind::ExecMismatch,
        backend: None,
    });

    // fused-check-elision: the same lookup → delete → use UAF, pinned to
    // the compiled backend. The correct fused thunk dispatches to
    // `asan_mem_check` and traps the read; the defective thunk takes its
    // fast path without dispatching, the access sails through exactly
    // like the unsanitized run, and the divergence disappears. The
    // interpreter is deliberately unaffected, so only a compiled-backend
    // matrix run can catch this class.
    let mut insns = vec![asm::mov64_imm(Reg::R0, 0)];
    lookup(&mut insns, 1, Size::Dw, 5);
    insns.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 8));
    insns.push(asm::mov64_reg(Reg::R6, Reg::R0));
    insns.extend(asm::ld_map_fd(Reg::R1, 1));
    insns.push(asm::mov64_reg(Reg::R2, Reg::R10));
    insns.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
    insns.push(asm::call_helper(helper::MAP_DELETE_ELEM as i32));
    insns.push(asm::ldx_mem(Size::Dw, Reg::R3, Reg::R6, 0));
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    insns.push(asm::mov64_imm(Reg::R0, 0));
    insns.push(asm::exit());
    cases.push(MatrixCase {
        defect: SanDefect::FusedCheckElision,
        bugs: BugSet::none(),
        prog_type: ProgType::SocketFilter,
        insns,
        map_seed: vec![seed_hash_entry()],
        divergence_with_defect: false,
        expect_kind: SanDivergenceKind::SanAbort,
        backend: Some(Backend::Compiled),
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvf_kernel_sim::KasanKind;

    fn view(halt: Option<HaltReason>, reports: &[KernelReport]) -> RunView<'_> {
        RunView {
            halt,
            exec_hash: 1,
            steps: 10,
            instrumented_steps: 0,
            helper_calls: 0,
            kfunc_calls: 0,
            reports,
        }
    }

    fn kasan(addr: u64, is_write: bool) -> KernelReport {
        KernelReport::Kasan {
            kind: KasanKind::NullDeref,
            addr,
            size: 8,
            is_write,
            origin: ReportOrigin::ProgramAccess,
        }
    }

    fn pf(addr: u64, is_write: bool) -> KernelReport {
        KernelReport::PageFault {
            addr,
            is_write,
            origin: ReportOrigin::ProgramAccess,
        }
    }

    fn kind_of(divs: &[KernelReport]) -> Option<SanDivergenceKind> {
        divs.iter().find_map(|r| match r {
            KernelReport::SanitizerDivergence { kind, .. } => Some(*kind),
            _ => None,
        })
    }

    #[test]
    fn identical_clean_runs_agree() {
        let s = view(Some(HaltReason::Exit), &[]);
        let u = view(Some(HaltReason::Exit), &[]);
        assert!(compare(&s, &u).is_empty());
    }

    #[test]
    fn step_contract_allows_instrumentation_only() {
        let mut s = view(Some(HaltReason::Exit), &[]);
        s.steps = 17;
        s.instrumented_steps = 7;
        let u = view(Some(HaltReason::Exit), &[]);
        assert!(compare(&s, &u).is_empty());
        s.instrumented_steps = 6;
        assert_eq!(
            kind_of(&compare(&s, &u)),
            Some(SanDivergenceKind::StepMismatch)
        );
    }

    #[test]
    fn exec_hash_mismatch_flagged_before_steps() {
        let mut s = view(Some(HaltReason::Exit), &[]);
        s.exec_hash = 2;
        s.steps = 999; // also violates the step contract
        let u = view(Some(HaltReason::Exit), &[]);
        assert_eq!(
            kind_of(&compare(&s, &u)),
            Some(SanDivergenceKind::ExecMismatch)
        );
    }

    #[test]
    fn trap_vs_clean_is_san_abort() {
        let sr = [kasan(16, false)];
        let s = view(Some(HaltReason::SanitizerTrap), &sr);
        let u = view(Some(HaltReason::Exit), &[]);
        assert_eq!(kind_of(&compare(&s, &u)), Some(SanDivergenceKind::SanAbort));
    }

    #[test]
    fn consistent_fault_conversion_is_clean() {
        let sr = [kasan(0, true)];
        let ur = [pf(0, true)];
        let s = view(Some(HaltReason::SanitizerTrap), &sr);
        let u = view(Some(HaltReason::PageFault), &ur);
        assert!(compare(&s, &u).is_empty());
    }

    #[test]
    fn polarity_flip_is_fault_meta_mismatch() {
        let sr = [kasan(0, false)];
        let ur = [pf(0, true)];
        let s = view(Some(HaltReason::SanitizerTrap), &sr);
        let u = view(Some(HaltReason::PageFault), &ur);
        assert_eq!(
            kind_of(&compare(&s, &u)),
            Some(SanDivergenceKind::FaultMetaMismatch)
        );
    }

    #[test]
    fn masked_fault_and_unchecked_access() {
        let ur = [pf(8, false)];
        let s = view(Some(HaltReason::Exit), &[]);
        let u = view(Some(HaltReason::PageFault), &ur);
        assert_eq!(
            kind_of(&compare(&s, &u)),
            Some(SanDivergenceKind::MaskedFault)
        );

        let sr = [pf(8, false)];
        let s = view(Some(HaltReason::PageFault), &sr);
        let u = view(Some(HaltReason::Exit), &[]);
        assert_eq!(
            kind_of(&compare(&s, &u)),
            Some(SanDivergenceKind::UncheckedAccess)
        );
    }

    #[test]
    fn shared_report_difference_flagged_for_attach_triggers() {
        let sr = [KernelReport::Warn { reason: "w".into() }];
        let s = view(None, &sr);
        let u = view(None, &[]);
        assert_eq!(
            kind_of(&compare(&s, &u)),
            Some(SanDivergenceKind::ExecMismatch)
        );
        let u2 = view(None, &sr);
        assert!(compare(&s, &u2).is_empty());
    }

    #[test]
    fn stats_record_and_merge() {
        let mut a = SanStats {
            runs: 2,
            ..Default::default()
        };
        a.record(SanDivergenceKind::SanAbort);
        a.record(SanDivergenceKind::ExecMismatch);
        let mut b = SanStats::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.runs, 4);
        assert_eq!(b.divergences, 4);
        assert_eq!(b.san_abort, 2);
        assert_eq!(b.kind_total(), b.divergences);
    }

    #[test]
    fn matrix_covers_every_defect_once() {
        let cases = matrix_cases();
        assert_eq!(cases.len(), SanDefect::ALL.len());
        for (case, d) in cases.iter().zip(SanDefect::ALL) {
            assert_eq!(case.defect, d);
            assert!(!case.insns.is_empty());
        }
    }
}
