//! Property-based tests for the instruction encoding layer.

use bvf_isa::{asm, opcode, Insn, Program, Reg};
use proptest::prelude::*;

fn arb_insn() -> impl Strategy<Value = Insn> {
    (any::<u8>(), 0u8..16, 0u8..16, any::<i16>(), any::<i32>())
        .prop_map(|(code, dst, src, off, imm)| Insn::new(code, dst, src, off, imm))
}

proptest! {
    /// Encoding then decoding any instruction is the identity.
    #[test]
    fn insn_byte_roundtrip(insn in arb_insn()) {
        prop_assert_eq!(Insn::from_bytes(insn.to_bytes()), insn);
    }

    /// Program serialization roundtrips for arbitrary slot sequences.
    #[test]
    fn program_byte_roundtrip(insns in proptest::collection::vec(arb_insn(), 0..64)) {
        let p = Program::from_insns(insns);
        let q = Program::from_bytes(&p.to_bytes()).expect("multiple of 8");
        prop_assert_eq!(p, q);
    }

    /// Decoding never panics for arbitrary byte content, it either yields a
    /// typed instruction or a decode error.
    #[test]
    fn decode_total(insns in proptest::collection::vec(arb_insn(), 1..64)) {
        let p = Program::from_insns(insns);
        for (_, res) in p.iter_decoded() {
            let _ = res; // Ok or Err are both fine; no panic is the property.
        }
    }

    /// The disassembler renders every program without panicking and emits
    /// one line per decoded instruction or raw slot.
    #[test]
    fn disasm_total(insns in proptest::collection::vec(arb_insn(), 1..64)) {
        let p = Program::from_insns(insns);
        let dump = p.dump();
        prop_assert!(dump.lines().count() >= 1);
    }

    /// ld_imm64 builder splits and decode reassembles the same immediate.
    #[test]
    fn ld_imm64_roundtrip(v in any::<u64>()) {
        let insns = asm::ld_imm64(Reg::R3, v);
        let p = Program::from_insns(insns.to_vec());
        match p.decode_at(0).unwrap() {
            (bvf_isa::InsnKind::LdImm64 { imm64, dst, .. }, 2) => {
                prop_assert_eq!(imm64, v);
                prop_assert_eq!(dst, Reg::R3);
            }
            other => prop_assert!(false, "unexpected decode {:?}", other),
        }
    }

    /// Structural validation never panics on arbitrary input.
    #[test]
    fn validate_total(insns in proptest::collection::vec(arb_insn(), 0..64)) {
        let _ = bvf_isa::validate_structure(&Program::from_insns(insns));
    }
}

proptest! {
    /// Every builder-produced ALU instruction decodes back to its parts.
    #[test]
    fn alu_builder_roundtrip(
        op_idx in 0usize..opcode::AluOp::BINARY.len(),
        dst in 0u8..10,
        src in 0u8..11,
        imm in any::<i32>(),
        is64 in any::<bool>(),
        use_reg in any::<bool>(),
    ) {
        let op = opcode::AluOp::BINARY[op_idx];
        let dst = Reg::from_u8(dst).unwrap();
        let src = Reg::from_u8(src).unwrap();
        let insn = match (is64, use_reg) {
            (true, true) => asm::alu64_reg(op, dst, src),
            (true, false) => asm::alu64_imm(op, dst, imm),
            (false, true) => asm::alu32_reg(op, dst, src),
            (false, false) => asm::alu32_imm(op, dst, imm),
        };
        let (kind, n) = bvf_isa::decode::decode(&[insn], 0).unwrap();
        prop_assert_eq!(n, 1);
        match kind {
            bvf_isa::InsnKind::AluReg { op: o, is64: w, dst: d, src: s, .. } => {
                prop_assert!(use_reg);
                prop_assert_eq!(o, op);
                prop_assert_eq!(w, is64);
                prop_assert_eq!(d, dst);
                prop_assert_eq!(s, src);
            }
            bvf_isa::InsnKind::AluImm { op: o, is64: w, dst: d, imm: i, .. } => {
                prop_assert!(!use_reg);
                prop_assert_eq!(o, op);
                prop_assert_eq!(w, is64);
                prop_assert_eq!(d, dst);
                prop_assert_eq!(i, imm);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
