//! Structural validity checks performed before verification proper.
//!
//! These mirror the early, cheap validations the kernel performs while
//! loading a program (`bpf_check` entry, `resolve_pseudo_ldimm64`,
//! `check_cfg` level zero): every slot must decode, registers must be in
//! user-visible range with `R10` never written, jump targets must stay
//! inside the program, and the program must end in an unconditional exit
//! or jump. Programs failing here are rejected with `EINVAL` before any
//! state tracking happens — the "easily rejected" fate of most
//! unstructured fuzzer output the paper describes.

use crate::decode::{CallTarget, DecodeError, InsnKind, SourceOperandValue};
use crate::program::Program;
use crate::reg::Reg;

/// Maximum number of instruction slots accepted per program
/// (`BPF_MAXINSNS`-era limit; privileged loads allow up to a million, we
/// use the classic 4096 which bounds fuzzing cost).
pub const MAX_INSNS: usize = 4096;

/// A structural (pre-verification) program error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralError {
    /// The program has no instructions.
    Empty,
    /// The program exceeds [`MAX_INSNS`] slots.
    TooLong(usize),
    /// A slot failed to decode.
    Decode {
        /// Offending slot index.
        pc: usize,
        /// Decoder diagnosis.
        err: DecodeError,
    },
    /// An instruction names a register not visible to programs.
    HiddenRegister {
        /// Offending slot index.
        pc: usize,
    },
    /// An instruction writes the read-only frame pointer `R10`.
    FrameRegisterWrite {
        /// Offending slot index.
        pc: usize,
    },
    /// A jump lands outside the program or inside an `LD_IMM64` pair.
    JumpOutOfRange {
        /// Offending slot index.
        pc: usize,
        /// Computed target slot.
        target: i64,
    },
    /// The last instruction can fall through past the end of the program.
    FallthroughEnd,
}

impl std::fmt::Display for StructuralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructuralError::Empty => write!(f, "empty program"),
            StructuralError::TooLong(n) => write!(f, "program too long ({n} insns)"),
            StructuralError::Decode { pc, err } => write!(f, "insn {pc}: {err}"),
            StructuralError::HiddenRegister { pc } => {
                write!(f, "insn {pc}: uses internal register")
            }
            StructuralError::FrameRegisterWrite { pc } => {
                write!(f, "insn {pc}: frame pointer is read only")
            }
            StructuralError::JumpOutOfRange { pc, target } => {
                write!(f, "insn {pc}: jump out of range to {target}")
            }
            StructuralError::FallthroughEnd => write!(f, "last insn is not an exit or jump"),
        }
    }
}

impl std::error::Error for StructuralError {}

fn written_reg(kind: &InsnKind) -> Option<Reg> {
    match *kind {
        InsnKind::AluReg { dst, .. }
        | InsnKind::AluImm { dst, .. }
        | InsnKind::Neg { dst, .. }
        | InsnKind::Endian { dst, .. }
        | InsnKind::LdImm64 { dst, .. }
        | InsnKind::Ldx { dst, .. } => Some(dst),
        InsnKind::Atomic { op, src, .. } if op.fetches() => Some(src),
        _ => None,
    }
}

fn regs_used(kind: &InsnKind) -> Vec<Reg> {
    match *kind {
        InsnKind::AluReg { dst, src, .. } => vec![dst, src],
        InsnKind::AluImm { dst, .. }
        | InsnKind::Neg { dst, .. }
        | InsnKind::Endian { dst, .. }
        | InsnKind::LdImm64 { dst, .. }
        | InsnKind::St { dst, .. } => vec![dst],
        InsnKind::LdAbs { .. } => vec![],
        InsnKind::LdInd { src, .. } => vec![src],
        InsnKind::Ldx { dst, src, .. }
        | InsnKind::Stx { dst, src, .. }
        | InsnKind::Atomic { dst, src, .. } => vec![dst, src],
        InsnKind::JmpCond { dst, src, .. } => {
            let mut v = vec![dst];
            if let SourceOperandValue::Reg(r) = src {
                v.push(r);
            }
            v
        }
        InsnKind::Ja { .. } | InsnKind::Call { .. } | InsnKind::Exit => vec![],
    }
}

/// Validates the structural properties of a program.
///
/// On success, returns the set of slot indices that start an instruction
/// (needed by callers that must distinguish instruction boundaries from
/// `LD_IMM64` second slots).
pub fn validate_structure(prog: &Program) -> Result<Vec<bool>, StructuralError> {
    if prog.is_empty() {
        return Err(StructuralError::Empty);
    }
    if prog.insn_count() > MAX_INSNS {
        return Err(StructuralError::TooLong(prog.insn_count()));
    }

    let n = prog.insn_count();
    let mut insn_start = vec![false; n];
    let mut last_kind: Option<InsnKind> = None;
    let mut pc = 0;
    while pc < n {
        insn_start[pc] = true;
        let (kind, slots) = prog
            .decode_at(pc)
            .map_err(|err| StructuralError::Decode { pc, err })?;

        for r in regs_used(&kind) {
            if !r.is_visible() {
                return Err(StructuralError::HiddenRegister { pc });
            }
        }
        if written_reg(&kind) == Some(Reg::R10) {
            return Err(StructuralError::FrameRegisterWrite { pc });
        }
        last_kind = Some(kind);
        pc += slots;
    }

    // Check jump targets now that instruction boundaries are known.
    let mut pc = 0;
    while pc < n {
        let (kind, slots) = prog.decode_at(pc).expect("validated above");
        let jump_off: Option<i64> = match kind {
            InsnKind::JmpCond { off, .. } => Some(off as i64),
            InsnKind::Ja { off } => Some(off as i64),
            InsnKind::Call {
                target: CallTarget::Pseudo(off),
            } => Some(off as i64),
            _ => None,
        };
        if let Some(off) = jump_off {
            let target = pc as i64 + 1 + off;
            if target < 0 || target >= n as i64 || !insn_start[target as usize] {
                return Err(StructuralError::JumpOutOfRange { pc, target });
            }
        }
        pc += slots;
    }

    match last_kind {
        Some(InsnKind::Exit) | Some(InsnKind::Ja { .. }) => Ok(insn_start),
        _ => Err(StructuralError::FallthroughEnd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::opcode::JmpOp;
    use crate::Insn;

    fn ok_prog() -> Program {
        Program::from_insns(vec![asm::mov64_imm(Reg::R0, 0), asm::exit()])
    }

    #[test]
    fn accepts_minimal_program() {
        assert!(validate_structure(&ok_prog()).is_ok());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            validate_structure(&Program::new()),
            Err(StructuralError::Empty)
        );
    }

    #[test]
    fn rejects_too_long() {
        let mut insns = vec![asm::mov64_imm(Reg::R0, 0); MAX_INSNS];
        insns.push(asm::exit());
        assert!(matches!(
            validate_structure(&Program::from_insns(insns)),
            Err(StructuralError::TooLong(_))
        ));
    }

    #[test]
    fn rejects_fallthrough_end() {
        let p = Program::from_insns(vec![asm::mov64_imm(Reg::R0, 0)]);
        assert_eq!(validate_structure(&p), Err(StructuralError::FallthroughEnd));
    }

    #[test]
    fn rejects_hidden_register() {
        let p = Program::from_insns(vec![asm::mov64_reg(Reg::R0, Reg::Ax), asm::exit()]);
        assert!(matches!(
            validate_structure(&p),
            Err(StructuralError::HiddenRegister { pc: 0 })
        ));
    }

    #[test]
    fn rejects_write_to_frame_pointer() {
        let p = Program::from_insns(vec![asm::mov64_imm(Reg::R10, 0), asm::exit()]);
        assert!(matches!(
            validate_structure(&p),
            Err(StructuralError::FrameRegisterWrite { pc: 0 })
        ));
    }

    #[test]
    fn allows_atomic_src_r10_read_but_not_fetch_into_r10() {
        use crate::decode::AtomicOp;
        use crate::opcode::Size;
        // Non-fetching atomic with src=R10 only reads R10.
        let p = Program::from_insns(vec![
            asm::mov64_imm(Reg::R0, 0),
            asm::atomic(
                AtomicOp::Add { fetch: false },
                Size::Dw,
                Reg::R0,
                Reg::R10,
                0,
            ),
            asm::exit(),
        ]);
        assert!(validate_structure(&p).is_ok());
        // Fetching atomic writes back into src.
        let p = Program::from_insns(vec![
            asm::mov64_imm(Reg::R0, 0),
            asm::atomic(
                AtomicOp::Add { fetch: true },
                Size::Dw,
                Reg::R0,
                Reg::R10,
                0,
            ),
            asm::exit(),
        ]);
        assert!(matches!(
            validate_structure(&p),
            Err(StructuralError::FrameRegisterWrite { pc: 1 })
        ));
    }

    #[test]
    fn rejects_jump_past_end() {
        let p = Program::from_insns(vec![asm::ja(5), asm::exit()]);
        assert!(matches!(
            validate_structure(&p),
            Err(StructuralError::JumpOutOfRange { pc: 0, target: 6 })
        ));
    }

    #[test]
    fn rejects_jump_into_ld_imm64_pair() {
        let mut insns = vec![asm::ja(1)];
        insns.extend(asm::ld_imm64(Reg::R0, 0));
        insns.push(asm::exit());
        let p = Program::from_insns(insns);
        assert!(matches!(
            validate_structure(&p),
            Err(StructuralError::JumpOutOfRange { pc: 0, target: 2 })
        ));
    }

    #[test]
    fn rejects_negative_jump_before_start() {
        let p = Program::from_insns(vec![asm::ja(-2), asm::exit()]);
        assert!(matches!(
            validate_structure(&p),
            Err(StructuralError::JumpOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_undecodable_slot() {
        let p = Program::from_insns(vec![Insn::new(0xfd, 0, 0, 0, 0), asm::exit()]);
        assert!(matches!(
            validate_structure(&p),
            Err(StructuralError::Decode { pc: 0, .. })
        ));
    }

    #[test]
    fn insn_start_map_marks_wide_slots() {
        let mut insns = asm::ld_imm64(Reg::R0, 1).to_vec();
        insns.push(asm::exit());
        let starts = validate_structure(&Program::from_insns(insns)).unwrap();
        assert_eq!(starts, vec![true, false, true]);
    }

    #[test]
    fn backward_jump_to_valid_target_ok() {
        let p = Program::from_insns(vec![
            asm::mov64_imm(Reg::R0, 0),
            asm::jmp_imm(JmpOp::Jeq, Reg::R0, 1, -2),
            asm::exit(),
        ]);
        assert!(validate_structure(&p).is_ok());
    }
}
