//! Typed decoding of raw instructions into a semantic view.

use crate::insn::Insn;
use crate::opcode::{call_src, mode, AluOp, Class, Endianness, JmpOp, Size, SourceOperand};
use crate::reg::Reg;

/// Target of a `CALL` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// An eBPF helper function, identified by its helper id.
    Helper(i32),
    /// A local eBPF function at instruction `pc + 1 + imm`.
    Pseudo(i32),
    /// A kernel function identified by its BTF id.
    Kfunc(i32),
}

/// Atomic read-modify-write operation, carried in the `imm` field of an
/// `STX | ATOMIC` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// `*(size *)(dst + off) += src`, optionally fetching the old value.
    Add {
        /// Whether the old value is written back to the source register.
        fetch: bool,
    },
    /// `*(size *)(dst + off) |= src`, optionally fetching the old value.
    Or {
        /// Whether the old value is written back to the source register.
        fetch: bool,
    },
    /// `*(size *)(dst + off) &= src`, optionally fetching the old value.
    And {
        /// Whether the old value is written back to the source register.
        fetch: bool,
    },
    /// `*(size *)(dst + off) ^= src`, optionally fetching the old value.
    Xor {
        /// Whether the old value is written back to the source register.
        fetch: bool,
    },
    /// Atomic exchange; always fetches.
    Xchg,
    /// Atomic compare-and-exchange against `R0`; always fetches.
    Cmpxchg,
}

impl AtomicOp {
    /// Decodes the atomic op from the instruction's `imm` field.
    pub fn from_imm(imm: i32) -> Option<AtomicOp> {
        const FETCH: i32 = 0x01;
        Some(match imm {
            0x00 => AtomicOp::Add { fetch: false },
            0x40 => AtomicOp::Or { fetch: false },
            0x50 => AtomicOp::And { fetch: false },
            0xa0 => AtomicOp::Xor { fetch: false },
            x if x == FETCH => AtomicOp::Add { fetch: true },
            x if x == 0x40 | FETCH => AtomicOp::Or { fetch: true },
            x if x == 0x50 | FETCH => AtomicOp::And { fetch: true },
            x if x == 0xa0 | FETCH => AtomicOp::Xor { fetch: true },
            0xe1 => AtomicOp::Xchg,
            0xf1 => AtomicOp::Cmpxchg,
            _ => return None,
        })
    }

    /// Encodes the atomic op into the `imm` field value.
    pub fn to_imm(self) -> i32 {
        match self {
            AtomicOp::Add { fetch } => fetch as i32,
            AtomicOp::Or { fetch } => 0x40 | fetch as i32,
            AtomicOp::And { fetch } => 0x50 | fetch as i32,
            AtomicOp::Xor { fetch } => 0xa0 | fetch as i32,
            AtomicOp::Xchg => 0xe1,
            AtomicOp::Cmpxchg => 0xf1,
        }
    }

    /// Whether the operation writes the old memory value back to a register.
    pub fn fetches(self) -> bool {
        match self {
            AtomicOp::Add { fetch }
            | AtomicOp::Or { fetch }
            | AtomicOp::And { fetch }
            | AtomicOp::Xor { fetch } => fetch,
            AtomicOp::Xchg | AtomicOp::Cmpxchg => true,
        }
    }
}

/// A fully decoded eBPF instruction.
///
/// `LdImm64` consumes two instruction slots; every other kind consumes one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnKind {
    /// Binary ALU with register source: `dst op= src`.
    AluReg {
        /// Operation.
        op: AluOp,
        /// True for `ALU64`, false for 32-bit `ALU`.
        is64: bool,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Offset; non-zero selects signed-division/modulo variants.
        off: i16,
    },
    /// Binary ALU with immediate source: `dst op= imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// True for `ALU64`, false for 32-bit `ALU`.
        is64: bool,
        /// Destination register.
        dst: Reg,
        /// Immediate operand.
        imm: i32,
        /// Offset; non-zero selects signed-division/modulo variants.
        off: i16,
    },
    /// Arithmetic negate: `dst = -dst`.
    Neg {
        /// True for 64-bit.
        is64: bool,
        /// Destination register.
        dst: Reg,
    },
    /// Byte-order conversion of `dst`, to `imm` bits.
    Endian {
        /// Conversion target.
        endianness: Endianness,
        /// Operand width in bits (16, 32, or 64).
        bits: i32,
        /// Destination register.
        dst: Reg,
    },
    /// Two-slot 64-bit immediate load, `dst = imm64`, possibly a pseudo
    /// (map fd, map value, BTF id, function) tagged in `src_pseudo`.
    LdImm64 {
        /// Destination register.
        dst: Reg,
        /// Pseudo tag from [`crate::opcode::pseudo`].
        src_pseudo: u8,
        /// Combined 64-bit immediate.
        imm64: u64,
    },
    /// Legacy absolute packet load into `R0`.
    LdAbs {
        /// Access size.
        size: Size,
        /// Packet offset.
        imm: i32,
    },
    /// Legacy indirect packet load into `R0`.
    LdInd {
        /// Access size.
        size: Size,
        /// Index register.
        src: Reg,
        /// Packet offset.
        imm: i32,
    },
    /// Memory load: `dst = *(size *)(src + off)`.
    Ldx {
        /// Access size.
        size: Size,
        /// Destination register.
        dst: Reg,
        /// Base address register.
        src: Reg,
        /// Byte offset.
        off: i16,
        /// Sign-extending load (`BPF_MEMSX`).
        sign_extend: bool,
    },
    /// Immediate store: `*(size *)(dst + off) = imm`.
    St {
        /// Access size.
        size: Size,
        /// Base address register.
        dst: Reg,
        /// Byte offset.
        off: i16,
        /// Value to store.
        imm: i32,
    },
    /// Register store: `*(size *)(dst + off) = src`.
    Stx {
        /// Access size.
        size: Size,
        /// Base address register.
        dst: Reg,
        /// Value register.
        src: Reg,
        /// Byte offset.
        off: i16,
    },
    /// Atomic read-modify-write on `*(size *)(dst + off)`.
    Atomic {
        /// Operation (and fetch flag).
        op: AtomicOp,
        /// Access size (`W` or `Dw` only).
        size: Size,
        /// Base address register.
        dst: Reg,
        /// Operand/result register.
        src: Reg,
        /// Byte offset.
        off: i16,
    },
    /// Conditional jump: `if dst op operand goto pc + 1 + off`.
    JmpCond {
        /// Comparison.
        op: JmpOp,
        /// True for 32-bit comparison (`JMP32`).
        is32: bool,
        /// Left operand register.
        dst: Reg,
        /// Right operand.
        src: SourceOperandValue,
        /// Jump displacement.
        off: i16,
    },
    /// Unconditional jump to `pc + 1 + off` (or `pc + 1 + imm` for `JA` in
    /// `JMP32` class, the long-jump form).
    Ja {
        /// Jump displacement.
        off: i32,
    },
    /// Function call.
    Call {
        /// Target classification.
        target: CallTarget,
    },
    /// Exit from the current function (or the program from the main frame).
    Exit,
}

/// Right-hand operand of a conditional jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceOperandValue {
    /// A register.
    Reg(Reg),
    /// A 32-bit immediate.
    Imm(i32),
}

/// Errors produced when decoding a raw instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name a valid instruction.
    InvalidOpcode(u8),
    /// A register field is out of range.
    InvalidRegister(u8),
    /// The `imm` field of an atomic instruction is not a known operation.
    InvalidAtomicOp(i32),
    /// A two-slot `LD_IMM64` was truncated or its second slot malformed.
    TruncatedLdImm64,
    /// The `src` field of a call instruction is not a known pseudo value.
    InvalidCallSrc(u8),
    /// An `END` operation with an invalid bit width.
    InvalidEndianBits(i32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::InvalidOpcode(c) => write!(f, "invalid opcode 0x{c:02x}"),
            DecodeError::InvalidRegister(r) => write!(f, "invalid register r{r}"),
            DecodeError::InvalidAtomicOp(i) => write!(f, "invalid atomic op 0x{i:x}"),
            DecodeError::TruncatedLdImm64 => write!(f, "truncated or malformed ld_imm64"),
            DecodeError::InvalidCallSrc(s) => write!(f, "invalid call src {s}"),
            DecodeError::InvalidEndianBits(b) => write!(f, "invalid endian width {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn reg(v: u8) -> Result<Reg, DecodeError> {
    Reg::from_u8(v).ok_or(DecodeError::InvalidRegister(v))
}

/// Decodes the instruction at `insns[pc]`, returning the typed form and the
/// number of slots consumed (1, or 2 for `LD_IMM64`).
pub fn decode(insns: &[Insn], pc: usize) -> Result<(InsnKind, usize), DecodeError> {
    let insn = insns[pc];
    let class = insn.class();
    match class {
        Class::Alu | Class::Alu64 => {
            let is64 = class == Class::Alu64;
            let op = AluOp::of(insn.code).ok_or(DecodeError::InvalidOpcode(insn.code))?;
            let dst = reg(insn.dst)?;
            match op {
                AluOp::Neg => Ok((InsnKind::Neg { is64, dst }, 1)),
                AluOp::End => {
                    let bits = insn.imm;
                    if !matches!(bits, 16 | 32 | 64) {
                        return Err(DecodeError::InvalidEndianBits(bits));
                    }
                    let endianness = if is64 {
                        Endianness::Swap
                    } else if SourceOperand::of(insn.code) == SourceOperand::Reg {
                        Endianness::Be
                    } else {
                        Endianness::Le
                    };
                    Ok((
                        InsnKind::Endian {
                            endianness,
                            bits,
                            dst,
                        },
                        1,
                    ))
                }
                _ => match SourceOperand::of(insn.code) {
                    SourceOperand::Reg => Ok((
                        InsnKind::AluReg {
                            op,
                            is64,
                            dst,
                            src: reg(insn.src)?,
                            off: insn.off,
                        },
                        1,
                    )),
                    SourceOperand::Imm => Ok((
                        InsnKind::AluImm {
                            op,
                            is64,
                            dst,
                            imm: insn.imm,
                            off: insn.off,
                        },
                        1,
                    )),
                },
            }
        }
        Class::Jmp | Class::Jmp32 => {
            let is32 = class == Class::Jmp32;
            let op = JmpOp::of(insn.code).ok_or(DecodeError::InvalidOpcode(insn.code))?;
            match op {
                JmpOp::Ja => {
                    // `JMP32 | JA` is the long-jump form using imm.
                    let off = if is32 { insn.imm } else { insn.off as i32 };
                    Ok((InsnKind::Ja { off }, 1))
                }
                JmpOp::Call => {
                    if is32 {
                        return Err(DecodeError::InvalidOpcode(insn.code));
                    }
                    let target = match insn.src {
                        call_src::HELPER => CallTarget::Helper(insn.imm),
                        call_src::PSEUDO_CALL => CallTarget::Pseudo(insn.imm),
                        call_src::KFUNC_CALL => CallTarget::Kfunc(insn.imm),
                        other => return Err(DecodeError::InvalidCallSrc(other)),
                    };
                    Ok((InsnKind::Call { target }, 1))
                }
                JmpOp::Exit => {
                    if is32 {
                        return Err(DecodeError::InvalidOpcode(insn.code));
                    }
                    Ok((InsnKind::Exit, 1))
                }
                _ => {
                    let dst = reg(insn.dst)?;
                    let src = match SourceOperand::of(insn.code) {
                        SourceOperand::Reg => SourceOperandValue::Reg(reg(insn.src)?),
                        SourceOperand::Imm => SourceOperandValue::Imm(insn.imm),
                    };
                    Ok((
                        InsnKind::JmpCond {
                            op,
                            is32,
                            dst,
                            src,
                            off: insn.off,
                        },
                        1,
                    ))
                }
            }
        }
        Class::Ld => {
            let size = Size::of(insn.code);
            match mode::of(insn.code) {
                mode::IMM => {
                    if size != Size::Dw {
                        return Err(DecodeError::InvalidOpcode(insn.code));
                    }
                    let next = insns.get(pc + 1).ok_or(DecodeError::TruncatedLdImm64)?;
                    if next.code != 0 || next.dst != 0 || next.src != 0 || next.off != 0 {
                        return Err(DecodeError::TruncatedLdImm64);
                    }
                    let imm64 = (insn.imm as u32 as u64) | ((next.imm as u32 as u64) << 32);
                    Ok((
                        InsnKind::LdImm64 {
                            dst: reg(insn.dst)?,
                            src_pseudo: insn.src,
                            imm64,
                        },
                        2,
                    ))
                }
                mode::ABS => Ok((
                    InsnKind::LdAbs {
                        size,
                        imm: insn.imm,
                    },
                    1,
                )),
                mode::IND => Ok((
                    InsnKind::LdInd {
                        size,
                        src: reg(insn.src)?,
                        imm: insn.imm,
                    },
                    1,
                )),
                _ => Err(DecodeError::InvalidOpcode(insn.code)),
            }
        }
        Class::Ldx => {
            let size = Size::of(insn.code);
            let m = mode::of(insn.code);
            let sign_extend = match m {
                mode::MEM => false,
                mode::MEMSX => true,
                _ => return Err(DecodeError::InvalidOpcode(insn.code)),
            };
            Ok((
                InsnKind::Ldx {
                    size,
                    dst: reg(insn.dst)?,
                    src: reg(insn.src)?,
                    off: insn.off,
                    sign_extend,
                },
                1,
            ))
        }
        Class::St => {
            if mode::of(insn.code) != mode::MEM {
                return Err(DecodeError::InvalidOpcode(insn.code));
            }
            Ok((
                InsnKind::St {
                    size: Size::of(insn.code),
                    dst: reg(insn.dst)?,
                    off: insn.off,
                    imm: insn.imm,
                },
                1,
            ))
        }
        Class::Stx => {
            let size = Size::of(insn.code);
            match mode::of(insn.code) {
                mode::MEM => Ok((
                    InsnKind::Stx {
                        size,
                        dst: reg(insn.dst)?,
                        src: reg(insn.src)?,
                        off: insn.off,
                    },
                    1,
                )),
                mode::ATOMIC => {
                    if !matches!(size, Size::W | Size::Dw) {
                        return Err(DecodeError::InvalidOpcode(insn.code));
                    }
                    let op = AtomicOp::from_imm(insn.imm)
                        .ok_or(DecodeError::InvalidAtomicOp(insn.imm))?;
                    Ok((
                        InsnKind::Atomic {
                            op,
                            size,
                            dst: reg(insn.dst)?,
                            src: reg(insn.src)?,
                            off: insn.off,
                        },
                        1,
                    ))
                }
                _ => Err(DecodeError::InvalidOpcode(insn.code)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    #[test]
    fn decode_mov_imm() {
        let insns = [asm::mov64_imm(Reg::R0, 42)];
        let (kind, n) = decode(&insns, 0).unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            kind,
            InsnKind::AluImm {
                op: AluOp::Mov,
                is64: true,
                dst: Reg::R0,
                imm: 42,
                off: 0,
            }
        );
    }

    #[test]
    fn decode_ld_imm64_two_slots() {
        let insns = asm::ld_imm64(Reg::R1, 0xdead_beef_cafe_f00d);
        let (kind, n) = decode(&insns, 0).unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            kind,
            InsnKind::LdImm64 {
                dst: Reg::R1,
                src_pseudo: 0,
                imm64: 0xdead_beef_cafe_f00d,
            }
        );
    }

    #[test]
    fn decode_truncated_ld_imm64() {
        let insns = [asm::ld_imm64(Reg::R1, 7)[0]];
        assert_eq!(decode(&insns, 0), Err(DecodeError::TruncatedLdImm64));
    }

    #[test]
    fn decode_malformed_ld_imm64_second_slot() {
        let mut insns = asm::ld_imm64(Reg::R1, 7).to_vec();
        insns[1].dst = 3;
        assert_eq!(decode(&insns, 0), Err(DecodeError::TruncatedLdImm64));
    }

    #[test]
    fn decode_call_targets() {
        let insns = [asm::call_helper(1)];
        let (kind, _) = decode(&insns, 0).unwrap();
        assert_eq!(
            kind,
            InsnKind::Call {
                target: CallTarget::Helper(1)
            }
        );

        let insns = [asm::call_kfunc(99)];
        let (kind, _) = decode(&insns, 0).unwrap();
        assert_eq!(
            kind,
            InsnKind::Call {
                target: CallTarget::Kfunc(99)
            }
        );
    }

    #[test]
    fn decode_invalid_register() {
        let mut insn = asm::mov64_reg(Reg::R0, Reg::R1);
        insn.dst = 13;
        assert!(matches!(
            decode(&[insn], 0),
            Err(DecodeError::InvalidRegister(13))
        ));
    }

    #[test]
    fn decode_atomics() {
        let insn = asm::atomic(AtomicOp::Cmpxchg, Size::Dw, Reg::R1, Reg::R2, -8);
        let (kind, _) = decode(&[insn], 0).unwrap();
        assert_eq!(
            kind,
            InsnKind::Atomic {
                op: AtomicOp::Cmpxchg,
                size: Size::Dw,
                dst: Reg::R1,
                src: Reg::R2,
                off: -8,
            }
        );
    }

    #[test]
    fn atomic_op_imm_roundtrip() {
        for op in [
            AtomicOp::Add { fetch: false },
            AtomicOp::Add { fetch: true },
            AtomicOp::Or { fetch: false },
            AtomicOp::Or { fetch: true },
            AtomicOp::And { fetch: false },
            AtomicOp::And { fetch: true },
            AtomicOp::Xor { fetch: false },
            AtomicOp::Xor { fetch: true },
            AtomicOp::Xchg,
            AtomicOp::Cmpxchg,
        ] {
            assert_eq!(AtomicOp::from_imm(op.to_imm()), Some(op));
        }
        assert_eq!(AtomicOp::from_imm(0x77), None);
    }

    #[test]
    fn decode_jmp32_long_ja() {
        let insn = Insn::new(Class::Jmp32 as u8, 0, 0, 0, 1000);
        let (kind, _) = decode(&[insn], 0).unwrap();
        assert_eq!(kind, InsnKind::Ja { off: 1000 });
    }
}
