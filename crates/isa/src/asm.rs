//! Assembler-style instruction builders mirroring the kernel `BPF_*` macros.
//!
//! These helpers make hand-written programs in tests, examples, and the
//! selftest corpus read close to the kernel's own test style:
//!
//! ```
//! use bvf_isa::{asm, Reg};
//!
//! let insns = vec![
//!     asm::mov64_imm(Reg::R0, 0),
//!     asm::stx_mem(bvf_isa::Size::Dw, Reg::R10, Reg::R0, -8),
//!     asm::exit(),
//! ];
//! assert_eq!(insns.len(), 3);
//! ```

use crate::decode::AtomicOp;
use crate::insn::Insn;
use crate::opcode::{call_src, mode, pseudo, AluOp, Class, JmpOp, Size, SourceOperand};
use crate::reg::Reg;

/// `dst = src` (64-bit).
pub fn mov64_reg(dst: Reg, src: Reg) -> Insn {
    alu64_reg(AluOp::Mov, dst, src)
}

/// `dst = imm` (64-bit, sign-extended immediate).
pub fn mov64_imm(dst: Reg, imm: i32) -> Insn {
    alu64_imm(AluOp::Mov, dst, imm)
}

/// `w(dst) = w(src)` (32-bit move, zero-extends).
pub fn mov32_reg(dst: Reg, src: Reg) -> Insn {
    alu32_reg(AluOp::Mov, dst, src)
}

/// `w(dst) = imm` (32-bit move, zero-extends).
pub fn mov32_imm(dst: Reg, imm: i32) -> Insn {
    alu32_imm(AluOp::Mov, dst, imm)
}

/// 64-bit ALU operation with a register source.
pub fn alu64_reg(op: AluOp, dst: Reg, src: Reg) -> Insn {
    Insn::new(
        Class::Alu64 as u8 | SourceOperand::Reg as u8 | op as u8,
        dst.as_u8(),
        src.as_u8(),
        0,
        0,
    )
}

/// 64-bit ALU operation with an immediate source.
pub fn alu64_imm(op: AluOp, dst: Reg, imm: i32) -> Insn {
    Insn::new(Class::Alu64 as u8 | op as u8, dst.as_u8(), 0, 0, imm)
}

/// 32-bit ALU operation with a register source.
pub fn alu32_reg(op: AluOp, dst: Reg, src: Reg) -> Insn {
    Insn::new(
        Class::Alu as u8 | SourceOperand::Reg as u8 | op as u8,
        dst.as_u8(),
        src.as_u8(),
        0,
        0,
    )
}

/// 32-bit ALU operation with an immediate source.
pub fn alu32_imm(op: AluOp, dst: Reg, imm: i32) -> Insn {
    Insn::new(Class::Alu as u8 | op as u8, dst.as_u8(), 0, 0, imm)
}

/// `dst = -dst` (64-bit).
pub fn neg64(dst: Reg) -> Insn {
    Insn::new(Class::Alu64 as u8 | AluOp::Neg as u8, dst.as_u8(), 0, 0, 0)
}

/// Byte-order conversion to big-endian with the given bit width.
pub fn endian_be(dst: Reg, bits: i32) -> Insn {
    Insn::new(
        Class::Alu as u8 | SourceOperand::Reg as u8 | AluOp::End as u8,
        dst.as_u8(),
        0,
        0,
        bits,
    )
}

/// Byte-order conversion to little-endian with the given bit width.
pub fn endian_le(dst: Reg, bits: i32) -> Insn {
    Insn::new(Class::Alu as u8 | AluOp::End as u8, dst.as_u8(), 0, 0, bits)
}

/// `dst = *(size *)(src + off)`.
pub fn ldx_mem(size: Size, dst: Reg, src: Reg, off: i16) -> Insn {
    Insn::new(
        Class::Ldx as u8 | size as u8 | mode::MEM,
        dst.as_u8(),
        src.as_u8(),
        off,
        0,
    )
}

/// `*(size *)(dst + off) = src`.
pub fn stx_mem(size: Size, dst: Reg, src: Reg, off: i16) -> Insn {
    Insn::new(
        Class::Stx as u8 | size as u8 | mode::MEM,
        dst.as_u8(),
        src.as_u8(),
        off,
        0,
    )
}

/// `*(size *)(dst + off) = imm`.
pub fn st_mem(size: Size, dst: Reg, off: i16, imm: i32) -> Insn {
    Insn::new(
        Class::St as u8 | size as u8 | mode::MEM,
        dst.as_u8(),
        0,
        off,
        imm,
    )
}

/// Atomic read-modify-write on `*(size *)(dst + off)` with operand `src`.
pub fn atomic(op: AtomicOp, size: Size, dst: Reg, src: Reg, off: i16) -> Insn {
    Insn::new(
        Class::Stx as u8 | size as u8 | mode::ATOMIC,
        dst.as_u8(),
        src.as_u8(),
        off,
        op.to_imm(),
    )
}

/// Two-slot 64-bit immediate load: `dst = imm64`.
pub fn ld_imm64(dst: Reg, imm64: u64) -> [Insn; 2] {
    ld_imm64_raw(dst, pseudo::NONE, imm64)
}

/// Two-slot 64-bit immediate load with a pseudo tag in the `src` field.
pub fn ld_imm64_raw(dst: Reg, src_pseudo: u8, imm64: u64) -> [Insn; 2] {
    [
        Insn::new(
            Class::Ld as u8 | Size::Dw as u8 | mode::IMM,
            dst.as_u8(),
            src_pseudo,
            0,
            imm64 as u32 as i32,
        ),
        Insn::new(0, 0, 0, 0, (imm64 >> 32) as u32 as i32),
    ]
}

/// Loads a map file descriptor: rewritten by the verifier to a map pointer.
pub fn ld_map_fd(dst: Reg, fd: i32) -> [Insn; 2] {
    ld_imm64_raw(dst, pseudo::MAP_FD, fd as u32 as u64)
}

/// Loads a pointer to a map's value area directly (`BPF_PSEUDO_MAP_VALUE`).
pub fn ld_map_value(dst: Reg, fd: i32, value_off: u32) -> [Insn; 2] {
    ld_imm64_raw(
        dst,
        pseudo::MAP_VALUE,
        (fd as u32 as u64) | ((value_off as u64) << 32),
    )
}

/// Loads a pointer to a BTF-identified kernel object (`BPF_PSEUDO_BTF_ID`).
pub fn ld_btf_id(dst: Reg, btf_id: u32) -> [Insn; 2] {
    ld_imm64_raw(dst, pseudo::BTF_ID, btf_id as u64)
}

/// Conditional jump with a register right operand.
pub fn jmp_reg(op: JmpOp, dst: Reg, src: Reg, off: i16) -> Insn {
    Insn::new(
        Class::Jmp as u8 | SourceOperand::Reg as u8 | op as u8,
        dst.as_u8(),
        src.as_u8(),
        off,
        0,
    )
}

/// Conditional jump with an immediate right operand.
pub fn jmp_imm(op: JmpOp, dst: Reg, imm: i32, off: i16) -> Insn {
    Insn::new(Class::Jmp as u8 | op as u8, dst.as_u8(), 0, off, imm)
}

/// 32-bit conditional jump with a register right operand.
pub fn jmp32_reg(op: JmpOp, dst: Reg, src: Reg, off: i16) -> Insn {
    Insn::new(
        Class::Jmp32 as u8 | SourceOperand::Reg as u8 | op as u8,
        dst.as_u8(),
        src.as_u8(),
        off,
        0,
    )
}

/// 32-bit conditional jump with an immediate right operand.
pub fn jmp32_imm(op: JmpOp, dst: Reg, imm: i32, off: i16) -> Insn {
    Insn::new(Class::Jmp32 as u8 | op as u8, dst.as_u8(), 0, off, imm)
}

/// Unconditional jump to `pc + 1 + off`.
pub fn ja(off: i16) -> Insn {
    Insn::new(Class::Jmp as u8 | JmpOp::Ja as u8, 0, 0, off, 0)
}

/// Call to the eBPF helper with the given id.
pub fn call_helper(helper_id: i32) -> Insn {
    Insn::new(
        Class::Jmp as u8 | JmpOp::Call as u8,
        0,
        call_src::HELPER,
        0,
        helper_id,
    )
}

/// Call to the local eBPF function at relative instruction offset `imm`.
pub fn call_pseudo(imm: i32) -> Insn {
    Insn::new(
        Class::Jmp as u8 | JmpOp::Call as u8,
        0,
        call_src::PSEUDO_CALL,
        0,
        imm,
    )
}

/// Call to the kernel function (kfunc) with the given BTF id.
pub fn call_kfunc(btf_id: i32) -> Insn {
    Insn::new(
        Class::Jmp as u8 | JmpOp::Call as u8,
        0,
        call_src::KFUNC_CALL,
        0,
        btf_id,
    )
}

/// Exit instruction.
pub fn exit() -> Insn {
    Insn::new(Class::Jmp as u8 | JmpOp::Exit as u8, 0, 0, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode, InsnKind, SourceOperandValue};

    #[test]
    fn builders_produce_decodable_instructions() {
        let progs: Vec<Vec<Insn>> = vec![
            vec![mov64_imm(Reg::R0, 1)],
            vec![mov64_reg(Reg::R1, Reg::R10)],
            vec![alu64_imm(AluOp::Add, Reg::R1, -8)],
            vec![alu32_reg(AluOp::Xor, Reg::R2, Reg::R3)],
            vec![neg64(Reg::R4)],
            vec![endian_be(Reg::R1, 16)],
            vec![endian_le(Reg::R1, 64)],
            vec![ldx_mem(Size::W, Reg::R0, Reg::R1, 4)],
            vec![stx_mem(Size::Dw, Reg::R10, Reg::R1, -8)],
            vec![st_mem(Size::B, Reg::R10, -1, 0x7f)],
            vec![atomic(
                AtomicOp::Add { fetch: true },
                Size::Dw,
                Reg::R10,
                Reg::R1,
                -8,
            )],
            ld_imm64(Reg::R5, u64::MAX).to_vec(),
            ld_map_fd(Reg::R1, 3).to_vec(),
            vec![jmp_imm(JmpOp::Jeq, Reg::R0, 0, 2)],
            vec![jmp32_reg(JmpOp::Jlt, Reg::R1, Reg::R2, -3)],
            vec![ja(5)],
            vec![call_helper(12)],
            vec![call_pseudo(4)],
            vec![call_kfunc(77)],
            vec![exit()],
        ];
        for insns in progs {
            let (_, n) = decode(&insns, 0).expect("builder output must decode");
            assert!(n == insns.len() || n == 1);
        }
    }

    #[test]
    fn jmp_operands_decode_correctly() {
        let (kind, _) = decode(&[jmp_imm(JmpOp::Jsgt, Reg::R3, -5, 7)], 0).unwrap();
        match kind {
            InsnKind::JmpCond {
                op,
                dst,
                src,
                off,
                is32,
            } => {
                assert_eq!(op, JmpOp::Jsgt);
                assert_eq!(dst, Reg::R3);
                assert_eq!(src, SourceOperandValue::Imm(-5));
                assert_eq!(off, 7);
                assert!(!is32);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ld_map_fd_carries_pseudo_tag() {
        let insns = ld_map_fd(Reg::R1, 42);
        assert_eq!(insns[0].src, pseudo::MAP_FD);
        assert_eq!(insns[0].imm, 42);
        assert_eq!(insns[1].imm, 0);
    }

    #[test]
    fn ld_map_value_splits_fd_and_offset() {
        let insns = ld_map_value(Reg::R2, 7, 16);
        let (kind, _) = decode(&insns, 0).unwrap();
        match kind {
            InsnKind::LdImm64 {
                src_pseudo, imm64, ..
            } => {
                assert_eq!(src_pseudo, pseudo::MAP_VALUE);
                assert_eq!(imm64 & 0xffff_ffff, 7);
                assert_eq!(imm64 >> 32, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
