//! Raw eBPF instruction representation and byte-level encoding.

use serde::{Deserialize, Serialize};

use crate::opcode::Class;

/// One 8-byte eBPF instruction slot.
///
/// Field layout matches `struct bpf_insn`:
///
/// ```text
/// +--------+---------+---------+--------+-----------+
/// | code   | dst:4   | src:4   | off    | imm       |
/// | 1 byte | (low)   | (high)  | 2 byte | 4 byte    |
/// +--------+---------+---------+--------+-----------+
/// ```
///
/// A 64-bit immediate load (`LD | IMM | DW`) occupies two consecutive
/// slots; the second slot carries the upper 32 bits in `imm` with all other
/// fields zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Insn {
    /// Opcode byte.
    pub code: u8,
    /// Destination register number (0..=11).
    pub dst: u8,
    /// Source register number (0..=11), or a pseudo tag for `LD_IMM64`/`CALL`.
    pub src: u8,
    /// Signed 16-bit offset: jump displacement or memory offset.
    pub off: i16,
    /// Signed 32-bit immediate.
    pub imm: i32,
}

impl Insn {
    /// Creates an instruction from its raw fields.
    pub fn new(code: u8, dst: u8, src: u8, off: i16, imm: i32) -> Insn {
        Insn {
            code,
            dst,
            src,
            off,
            imm,
        }
    }

    /// The instruction class encoded in the opcode byte.
    pub fn class(&self) -> Class {
        Class::of(self.code)
    }

    /// Whether this is the first slot of a two-slot 64-bit immediate load.
    pub fn is_ld_imm64(&self) -> bool {
        self.code == crate::opcode::mode::IMM | Class::Ld as u8 | crate::opcode::Size::Dw as u8
    }

    /// Encodes the instruction into its 8-byte little-endian wire format.
    pub fn to_bytes(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = self.code;
        b[1] = (self.dst & 0x0f) | (self.src << 4);
        b[2..4].copy_from_slice(&self.off.to_le_bytes());
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }

    /// Decodes an instruction from its 8-byte little-endian wire format.
    pub fn from_bytes(b: [u8; 8]) -> Insn {
        Insn {
            code: b[0],
            dst: b[1] & 0x0f,
            src: b[1] >> 4,
            off: i16::from_le_bytes([b[2], b[3]]),
            imm: i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{mode, Size};

    #[test]
    fn byte_roundtrip() {
        let insn = Insn::new(0x61, 3, 10, -8, 0x1234_5678);
        assert_eq!(Insn::from_bytes(insn.to_bytes()), insn);
    }

    #[test]
    fn negative_fields_roundtrip() {
        let insn = Insn::new(0xc7, 1, 0, -1, -1);
        let decoded = Insn::from_bytes(insn.to_bytes());
        assert_eq!(decoded.off, -1);
        assert_eq!(decoded.imm, -1);
    }

    #[test]
    fn ld_imm64_detection() {
        let code = mode::IMM | Class::Ld as u8 | Size::Dw as u8;
        assert_eq!(code, 0x18);
        assert!(Insn::new(code, 1, 0, 0, 7).is_ld_imm64());
        assert!(!Insn::new(0x61, 1, 0, 0, 7).is_ld_imm64());
    }

    #[test]
    fn register_nibbles_packed_correctly() {
        let insn = Insn::new(0xbf, 9, 10, 0, 0);
        let bytes = insn.to_bytes();
        assert_eq!(bytes[1], 0xa9);
    }
}
