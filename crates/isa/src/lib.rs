//! The eBPF instruction set architecture.
//!
//! This crate models the eBPF ISA as used by the Linux kernel: the raw
//! 8-byte instruction encoding, opcode tables for all instruction classes
//! (`LD`, `LDX`, `ST`, `STX`, `ALU`, `JMP`, `JMP32`, `ALU64`), a typed
//! decoded view ([`InsnKind`]), an assembler-style builder API mirroring the
//! kernel's `BPF_*` macros, and a disassembler producing output in the same
//! style as the kernel verifier log.
//!
//! Everything downstream — the verifier, the interpreter, the fuzzer's
//! program generators and the sanitation instrumentation — operates on the
//! [`Insn`] and [`Program`] types defined here.
//!
//! # Examples
//!
//! ```
//! use bvf_isa::{asm, Program, Reg};
//!
//! // r0 = 0; exit
//! let prog = Program::from_insns(vec![
//!     asm::mov64_imm(Reg::R0, 0),
//!     asm::exit(),
//! ]);
//! assert_eq!(prog.insn_count(), 2);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod insn;
pub mod opcode;
pub mod program;
pub mod reg;
pub mod validate;

pub use decode::{AtomicOp, CallTarget, InsnKind};
pub use insn::Insn;
pub use opcode::{AluOp, Class, Endianness, JmpOp, Size, SourceOperand};
pub use program::Program;
pub use reg::Reg;
pub use validate::{validate_structure, StructuralError};
