//! Disassembler producing kernel-verifier-log style output.

use crate::decode::{AtomicOp, CallTarget, InsnKind, SourceOperandValue};
use crate::opcode::{pseudo, Endianness, Size};
use crate::program::Program;

fn size_str(size: Size) -> &'static str {
    match size {
        Size::B => "u8",
        Size::H => "u16",
        Size::W => "u32",
        Size::Dw => "u64",
    }
}

fn off_str(off: i16) -> String {
    if off >= 0 {
        format!("+{off}")
    } else {
        format!("{off}")
    }
}

/// Renders one decoded instruction in verifier-log style.
pub fn format_insn(pc: usize, kind: &InsnKind) -> String {
    match *kind {
        InsnKind::AluReg {
            op, is64, dst, src, ..
        } => {
            if is64 {
                format!("{dst} {} {src}", op.symbol())
            } else {
                format!("w{} {} w{}", dst.as_u8(), op.symbol(), src.as_u8())
            }
        }
        InsnKind::AluImm {
            op, is64, dst, imm, ..
        } => {
            if is64 {
                format!("{dst} {} {imm}", op.symbol())
            } else {
                format!("w{} {} {imm}", dst.as_u8(), op.symbol())
            }
        }
        InsnKind::Neg { is64, dst } => {
            if is64 {
                format!("{dst} = -{dst}")
            } else {
                format!("w{} = -w{}", dst.as_u8(), dst.as_u8())
            }
        }
        InsnKind::Endian {
            endianness,
            bits,
            dst,
        } => {
            let name = match endianness {
                Endianness::Le => "le",
                Endianness::Be => "be",
                Endianness::Swap => "bswap",
            };
            format!("{dst} = {name}{bits} {dst}")
        }
        InsnKind::LdImm64 {
            dst,
            src_pseudo,
            imm64,
        } => match src_pseudo {
            pseudo::MAP_FD => format!("{dst} = map[fd={}]", imm64 as u32),
            pseudo::MAP_VALUE => format!(
                "{dst} = map_value[fd={}]+{}",
                imm64 as u32,
                (imm64 >> 32) as u32
            ),
            pseudo::BTF_ID => format!("{dst} = btf_id[{}]", imm64 as u32),
            pseudo::FUNC => format!("{dst} = func[{}]", imm64 as u32),
            _ => format!("{dst} = 0x{imm64:x}"),
        },
        InsnKind::LdAbs { size, imm } => {
            format!("r0 = *({} *)skb[{imm}]", size_str(size))
        }
        InsnKind::LdInd { size, src, imm } => {
            format!("r0 = *({} *)skb[{src}+{imm}]", size_str(size))
        }
        InsnKind::Ldx {
            size,
            dst,
            src,
            off,
            sign_extend,
        } => {
            let s = if sign_extend {
                format!("s{}", &size_str(size)[1..])
            } else {
                size_str(size).to_string()
            };
            format!("{dst} = *({s} *)({src} {})", off_str(off))
        }
        InsnKind::St {
            size,
            dst,
            off,
            imm,
        } => {
            format!("*({} *)({dst} {}) = {imm}", size_str(size), off_str(off))
        }
        InsnKind::Stx {
            size,
            dst,
            src,
            off,
        } => {
            format!("*({} *)({dst} {}) = {src}", size_str(size), off_str(off))
        }
        InsnKind::Atomic {
            op,
            size,
            dst,
            src,
            off,
        } => {
            let name = match op {
                AtomicOp::Add { .. } => "add",
                AtomicOp::Or { .. } => "or",
                AtomicOp::And { .. } => "and",
                AtomicOp::Xor { .. } => "xor",
                AtomicOp::Xchg => "xchg",
                AtomicOp::Cmpxchg => "cmpxchg",
            };
            let fetch = if op.fetches() { " fetch" } else { "" };
            format!(
                "lock {name}{fetch} *({} *)({dst} {}) {src}",
                size_str(size),
                off_str(off)
            )
        }
        InsnKind::JmpCond {
            op,
            is32,
            dst,
            src,
            off,
        } => {
            let lhs = if is32 {
                format!("w{}", dst.as_u8())
            } else {
                dst.to_string()
            };
            let rhs = match src {
                SourceOperandValue::Reg(r) => {
                    if is32 {
                        format!("w{}", r.as_u8())
                    } else {
                        r.to_string()
                    }
                }
                SourceOperandValue::Imm(i) => i.to_string(),
            };
            format!("if {lhs} {} {rhs} goto pc{}", op.symbol(), off_str(off))
        }
        InsnKind::Ja { off } => {
            let target = pc as i64 + 1 + off as i64;
            format!(
                "goto pc{} ; -> {target}",
                if off >= 0 {
                    format!("+{off}")
                } else {
                    format!("{off}")
                }
            )
        }
        InsnKind::Call { target } => match target {
            CallTarget::Helper(id) => format!("call helper#{id}"),
            CallTarget::Pseudo(off) => format!(
                "call pc{}",
                if off >= 0 {
                    format!("+{off}")
                } else {
                    format!("{off}")
                }
            ),
            CallTarget::Kfunc(id) => format!("call kfunc#{id}"),
        },
        InsnKind::Exit => "exit".to_string(),
    }
}

/// Renders a whole program, one `pc: insn` line at a time.
///
/// Undecodable slots are rendered as raw bytes so dumps never fail.
pub fn dump_program(prog: &Program) -> String {
    let mut out = String::new();
    let mut pc = 0;
    while pc < prog.insn_count() {
        match prog.decode_at(pc) {
            Ok((kind, slots)) => {
                out.push_str(&format!("{pc:4}: {}\n", format_insn(pc, &kind)));
                pc += slots;
            }
            Err(_) => {
                let insn = prog.insns()[pc];
                out.push_str(&format!(
                    "{pc:4}: .raw 0x{:016x}\n",
                    u64::from_le_bytes(insn.to_bytes())
                ));
                pc += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::opcode::{AluOp, JmpOp};
    use crate::reg::Reg;

    #[test]
    fn dump_matches_verifier_log_style() {
        let mut p = Program::new();
        p.extend(asm::ld_map_fd(Reg::R1, 4));
        p.push(asm::mov64_reg(Reg::R2, Reg::R10));
        p.push(asm::alu64_imm(AluOp::Add, Reg::R2, -8));
        p.push(asm::st_mem(Size::Dw, Reg::R2, 0, 0));
        p.push(asm::call_helper(1));
        p.push(asm::jmp_imm(JmpOp::Jeq, Reg::R0, 0, 1));
        p.push(asm::ldx_mem(Size::W, Reg::R0, Reg::R0, 0));
        p.push(asm::exit());
        let dump = p.dump();
        assert!(dump.contains("r1 = map[fd=4]"), "{dump}");
        assert!(dump.contains("r2 = r10"), "{dump}");
        assert!(dump.contains("r2 += -8"), "{dump}");
        assert!(dump.contains("*(u64 *)(r2 +0) = 0"), "{dump}");
        assert!(dump.contains("call helper#1"), "{dump}");
        assert!(dump.contains("if r0 == 0 goto pc+1"), "{dump}");
        assert!(dump.contains("r0 = *(u32 *)(r0 +0)"), "{dump}");
        assert!(dump.contains("exit"), "{dump}");
    }

    #[test]
    fn dump_survives_invalid_opcodes() {
        let p = Program::from_insns(vec![crate::Insn::new(0xff, 0, 0, 0, 0)]);
        assert!(p.dump().contains(".raw"));
    }
}
