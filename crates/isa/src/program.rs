//! eBPF program container.

use serde::{Deserialize, Serialize};

use crate::decode::{decode, DecodeError, InsnKind};
use crate::insn::Insn;

/// A sequence of eBPF instructions forming one program.
///
/// The container stores raw instruction slots; `LD_IMM64` occupies two
/// slots. Use [`Program::iter_decoded`] to walk typed instructions with
/// correct slot accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    insns: Vec<Insn>,
}

impl Program {
    /// Creates a program from raw instruction slots.
    pub fn from_insns(insns: Vec<Insn>) -> Program {
        Program { insns }
    }

    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// The raw instruction slots.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Mutable access to the raw instruction slots.
    pub fn insns_mut(&mut self) -> &mut Vec<Insn> {
        &mut self.insns
    }

    /// Number of instruction slots (an `LD_IMM64` counts as two).
    pub fn insn_count(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Appends one instruction slot.
    pub fn push(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// Appends several instruction slots.
    pub fn extend(&mut self, insns: impl IntoIterator<Item = Insn>) {
        self.insns.extend(insns);
    }

    /// Decodes the instruction at slot `pc`.
    pub fn decode_at(&self, pc: usize) -> Result<(InsnKind, usize), DecodeError> {
        decode(&self.insns, pc)
    }

    /// Iterates `(pc, kind, slots)` over all decoded instructions.
    ///
    /// Stops early with an error entry if any slot fails to decode.
    pub fn iter_decoded(&self) -> DecodedIter<'_> {
        DecodedIter { prog: self, pc: 0 }
    }

    /// Serializes to the flat little-endian byte format used by `bpf(2)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.insns.len() * 8);
        for insn in &self.insns {
            out.extend_from_slice(&insn.to_bytes());
        }
        out
    }

    /// Parses a program from the flat byte format; the length must be a
    /// multiple of eight.
    pub fn from_bytes(bytes: &[u8]) -> Option<Program> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let insns = bytes
            .chunks_exact(8)
            .map(|c| Insn::from_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect();
        Some(Program { insns })
    }

    /// Renders the program in verifier-log style, one instruction per line.
    pub fn dump(&self) -> String {
        crate::disasm::dump_program(self)
    }
}

/// Iterator over decoded instructions; see [`Program::iter_decoded`].
pub struct DecodedIter<'a> {
    prog: &'a Program,
    pc: usize,
}

impl Iterator for DecodedIter<'_> {
    type Item = (usize, Result<(InsnKind, usize), DecodeError>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pc >= self.prog.insn_count() {
            return None;
        }
        let pc = self.pc;
        let res = self.prog.decode_at(pc);
        match &res {
            Ok((_, slots)) => self.pc += slots,
            Err(_) => self.pc = self.prog.insn_count(),
        }
        Some((pc, res))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut p = Program::new();
        p.extend(asm::ld_imm64(Reg::R1, 0x1122_3344_5566_7788));
        p.push(asm::mov64_imm(Reg::R0, 0));
        p.push(asm::exit());
        p
    }

    #[test]
    fn byte_roundtrip() {
        let p = sample();
        let q = Program::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn from_bytes_rejects_partial_slots() {
        assert!(Program::from_bytes(&[0u8; 9]).is_none());
        assert!(Program::from_bytes(&[0u8; 8]).is_some());
    }

    #[test]
    fn decoded_iter_handles_wide_instructions() {
        let p = sample();
        let pcs: Vec<usize> = p.iter_decoded().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![0, 2, 3]);
        assert!(p.iter_decoded().all(|(_, r)| r.is_ok()));
    }

    #[test]
    fn decoded_iter_stops_on_error() {
        let mut p = sample();
        p.insns_mut()[2] = Insn::new(0xff, 0, 0, 0, 0);
        let results: Vec<_> = p.iter_decoded().collect();
        assert_eq!(results.len(), 2);
        assert!(results[1].1.is_err());
    }
}
