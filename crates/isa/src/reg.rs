//! eBPF register file.

use serde::{Deserialize, Serialize};

/// An eBPF register.
///
/// The architectural register file has eleven registers visible to
/// programs: `R0` (return value), `R1`–`R5` (function arguments, clobbered
/// by calls), `R6`–`R9` (callee-saved), and `R10` (read-only frame
/// pointer). A twelfth register, [`Reg::Ax`] (`R11`), exists only inside
/// the kernel: rewrite passes — including BVF's sanitation instrumentation —
/// use it as scratch space invisible to the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Reg {
    /// Return value of functions and exit value of the program.
    R0 = 0,
    /// First argument register; holds the context pointer on entry.
    R1 = 1,
    /// Second argument register.
    R2 = 2,
    /// Third argument register.
    R3 = 3,
    /// Fourth argument register.
    R4 = 4,
    /// Fifth argument register.
    R5 = 5,
    /// Callee-saved register.
    R6 = 6,
    /// Callee-saved register.
    R7 = 7,
    /// Callee-saved register.
    R8 = 8,
    /// Callee-saved register.
    R9 = 9,
    /// Read-only frame pointer to the 512-byte stack.
    R10 = 10,
    /// Auxiliary register used by kernel rewrite passes; never visible to
    /// programs and rejected by the verifier if it appears in user input.
    Ax = 11,
}

/// Number of registers visible to eBPF programs (`R0`..=`R10`).
pub const MAX_BPF_REG: u8 = 11;

/// Total number of registers including the internal auxiliary register.
pub const MAX_BPF_EXT_REG: u8 = 12;

/// The size of the per-frame eBPF stack in bytes.
pub const STACK_SIZE: i32 = 512;

impl Reg {
    /// All registers visible to programs, in numeric order.
    pub const VISIBLE: [Reg; 11] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
    ];

    /// Caller-saved argument registers (`R1`..=`R5`).
    pub const ARGS: [Reg; 5] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5];

    /// Callee-saved registers (`R6`..=`R9`).
    pub const CALLEE_SAVED: [Reg; 4] = [Reg::R6, Reg::R7, Reg::R8, Reg::R9];

    /// Returns the register for a raw encoding value, if in range.
    pub fn from_u8(v: u8) -> Option<Reg> {
        match v {
            0 => Some(Reg::R0),
            1 => Some(Reg::R1),
            2 => Some(Reg::R2),
            3 => Some(Reg::R3),
            4 => Some(Reg::R4),
            5 => Some(Reg::R5),
            6 => Some(Reg::R6),
            7 => Some(Reg::R7),
            8 => Some(Reg::R8),
            9 => Some(Reg::R9),
            10 => Some(Reg::R10),
            11 => Some(Reg::Ax),
            _ => None,
        }
    }

    /// Raw encoding value of the register.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Index usable for register-state arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the register is visible to eBPF programs.
    pub fn is_visible(self) -> bool {
        (self as u8) < MAX_BPF_REG
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reg::Ax => write!(f, "r11"),
            other => write!(f, "r{}", *other as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_registers() {
        for v in 0..MAX_BPF_EXT_REG {
            let r = Reg::from_u8(v).expect("register in range");
            assert_eq!(r.as_u8(), v);
        }
        assert_eq!(Reg::from_u8(MAX_BPF_EXT_REG), None);
        assert_eq!(Reg::from_u8(255), None);
    }

    #[test]
    fn visibility() {
        for r in Reg::VISIBLE {
            assert!(r.is_visible());
        }
        assert!(!Reg::Ax.is_visible());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R10.to_string(), "r10");
        assert_eq!(Reg::Ax.to_string(), "r11");
    }
}
