//! Opcode field constants and typed opcode components.
//!
//! The low byte of every eBPF instruction (`Insn::code`) is split into
//! fields exactly as in `include/uapi/linux/bpf.h` and `bpf_common.h`:
//!
//! - bits 0–2: instruction class ([`Class`]);
//! - for ALU/JMP classes: bit 3 is the source-operand flag ([`SourceOperand`])
//!   and bits 4–7 the operation ([`AluOp`] / [`JmpOp`]);
//! - for load/store classes: bits 3–4 are the access size ([`Size`]) and
//!   bits 5–7 the addressing mode (`MODE_*`).

use serde::{Deserialize, Serialize};

/// Instruction class (bits 0–2 of the opcode byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Class {
    /// Non-standard loads: 64-bit immediate loads and legacy packet loads.
    Ld = 0x00,
    /// Register loads from memory.
    Ldx = 0x01,
    /// Stores of immediates to memory.
    St = 0x02,
    /// Stores of registers to memory (also atomics).
    Stx = 0x03,
    /// 32-bit arithmetic.
    Alu = 0x04,
    /// 64-bit jumps, calls, and exit.
    Jmp = 0x05,
    /// 32-bit jumps.
    Jmp32 = 0x06,
    /// 64-bit arithmetic.
    Alu64 = 0x07,
}

impl Class {
    /// Extracts the class from an opcode byte.
    pub fn of(code: u8) -> Class {
        match code & 0x07 {
            0x00 => Class::Ld,
            0x01 => Class::Ldx,
            0x02 => Class::St,
            0x03 => Class::Stx,
            0x04 => Class::Alu,
            0x05 => Class::Jmp,
            0x06 => Class::Jmp32,
            _ => Class::Alu64,
        }
    }

    /// Whether this is one of the two arithmetic classes.
    pub fn is_alu(self) -> bool {
        matches!(self, Class::Alu | Class::Alu64)
    }

    /// Whether this is one of the two jump classes.
    pub fn is_jmp(self) -> bool {
        matches!(self, Class::Jmp | Class::Jmp32)
    }

    /// Whether this is a memory-access class.
    pub fn is_ldst(self) -> bool {
        matches!(self, Class::Ld | Class::Ldx | Class::St | Class::Stx)
    }
}

/// Source operand flag (bit 3) for ALU and JMP classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SourceOperand {
    /// The 32-bit immediate is the second operand (`K`).
    Imm = 0x00,
    /// The source register is the second operand (`X`).
    Reg = 0x08,
}

impl SourceOperand {
    /// Extracts the source flag from an opcode byte.
    pub fn of(code: u8) -> SourceOperand {
        if code & 0x08 != 0 {
            SourceOperand::Reg
        } else {
            SourceOperand::Imm
        }
    }
}

/// Memory access width (bits 3–4) for load/store classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Size {
    /// 4 bytes (`BPF_W`).
    W = 0x00,
    /// 2 bytes (`BPF_H`).
    H = 0x08,
    /// 1 byte (`BPF_B`).
    B = 0x10,
    /// 8 bytes (`BPF_DW`).
    Dw = 0x18,
}

impl Size {
    /// Extracts the size field from an opcode byte.
    pub fn of(code: u8) -> Size {
        match code & 0x18 {
            0x00 => Size::W,
            0x08 => Size::H,
            0x10 => Size::B,
            _ => Size::Dw,
        }
    }

    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Size::B => 1,
            Size::H => 2,
            Size::W => 4,
            Size::Dw => 8,
        }
    }

    /// All sizes, smallest to largest.
    pub const ALL: [Size; 4] = [Size::B, Size::H, Size::W, Size::Dw];
}

/// Addressing mode (bits 5–7) for load/store classes.
pub mod mode {
    /// 64-bit immediate load (two instruction slots).
    pub const IMM: u8 = 0x00;
    /// Legacy absolute packet load.
    pub const ABS: u8 = 0x20;
    /// Legacy indirect packet load.
    pub const IND: u8 = 0x40;
    /// Regular memory access via register + offset.
    pub const MEM: u8 = 0x60;
    /// Sign-extending memory load (`BPF_MEMSX`).
    pub const MEMSX: u8 = 0x80;
    /// Atomic read-modify-write (class `STX` only).
    pub const ATOMIC: u8 = 0xc0;

    /// Extracts the mode field from an opcode byte.
    pub fn of(code: u8) -> u8 {
        code & 0xe0
    }
}

/// ALU operation (bits 4–7) for the `ALU`/`ALU64` classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AluOp {
    /// `dst += src`.
    Add = 0x00,
    /// `dst -= src`.
    Sub = 0x10,
    /// `dst *= src`.
    Mul = 0x20,
    /// `dst /= src` (unsigned; division by zero yields zero).
    Div = 0x30,
    /// `dst |= src`.
    Or = 0x40,
    /// `dst &= src`.
    And = 0x50,
    /// `dst <<= src`.
    Lsh = 0x60,
    /// `dst >>= src` (logical).
    Rsh = 0x70,
    /// `dst = -dst`.
    Neg = 0x80,
    /// `dst %= src` (unsigned; modulo zero leaves dst unchanged).
    Mod = 0x90,
    /// `dst ^= src`.
    Xor = 0xa0,
    /// `dst = src`.
    Mov = 0xb0,
    /// `dst >>= src` (arithmetic).
    Arsh = 0xc0,
    /// Byte-order conversion.
    End = 0xd0,
}

impl AluOp {
    /// Extracts the ALU op from an opcode byte, if valid.
    pub fn of(code: u8) -> Option<AluOp> {
        Some(match code & 0xf0 {
            0x00 => AluOp::Add,
            0x10 => AluOp::Sub,
            0x20 => AluOp::Mul,
            0x30 => AluOp::Div,
            0x40 => AluOp::Or,
            0x50 => AluOp::And,
            0x60 => AluOp::Lsh,
            0x70 => AluOp::Rsh,
            0x80 => AluOp::Neg,
            0x90 => AluOp::Mod,
            0xa0 => AluOp::Xor,
            0xb0 => AluOp::Mov,
            0xc0 => AluOp::Arsh,
            0xd0 => AluOp::End,
            _ => return None,
        })
    }

    /// All binary ALU operations (everything but `Neg`/`End`).
    pub const BINARY: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Or,
        AluOp::And,
        AluOp::Lsh,
        AluOp::Rsh,
        AluOp::Mod,
        AluOp::Xor,
        AluOp::Mov,
        AluOp::Arsh,
    ];

    /// The mnemonic operator used by the verifier log.
    pub fn symbol(self) -> &'static str {
        match self {
            AluOp::Add => "+=",
            AluOp::Sub => "-=",
            AluOp::Mul => "*=",
            AluOp::Div => "/=",
            AluOp::Or => "|=",
            AluOp::And => "&=",
            AluOp::Lsh => "<<=",
            AluOp::Rsh => ">>=",
            AluOp::Neg => "neg",
            AluOp::Mod => "%=",
            AluOp::Xor => "^=",
            AluOp::Mov => "=",
            AluOp::Arsh => "s>>=",
            AluOp::End => "endian",
        }
    }
}

/// Jump condition (bits 4–7) for the `JMP`/`JMP32` classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum JmpOp {
    /// Unconditional jump.
    Ja = 0x00,
    /// Jump if equal.
    Jeq = 0x10,
    /// Jump if greater (unsigned).
    Jgt = 0x20,
    /// Jump if greater or equal (unsigned).
    Jge = 0x30,
    /// Jump if `dst & src` is non-zero.
    Jset = 0x40,
    /// Jump if not equal.
    Jne = 0x50,
    /// Jump if greater (signed).
    Jsgt = 0x60,
    /// Jump if greater or equal (signed).
    Jsge = 0x70,
    /// Function call (class `JMP` only).
    Call = 0x80,
    /// Program/function exit (class `JMP` only).
    Exit = 0x90,
    /// Jump if less (unsigned).
    Jlt = 0xa0,
    /// Jump if less or equal (unsigned).
    Jle = 0xb0,
    /// Jump if less (signed).
    Jslt = 0xc0,
    /// Jump if less or equal (signed).
    Jsle = 0xd0,
}

impl JmpOp {
    /// Extracts the jump op from an opcode byte, if valid.
    pub fn of(code: u8) -> Option<JmpOp> {
        Some(match code & 0xf0 {
            0x00 => JmpOp::Ja,
            0x10 => JmpOp::Jeq,
            0x20 => JmpOp::Jgt,
            0x30 => JmpOp::Jge,
            0x40 => JmpOp::Jset,
            0x50 => JmpOp::Jne,
            0x60 => JmpOp::Jsgt,
            0x70 => JmpOp::Jsge,
            0x80 => JmpOp::Call,
            0x90 => JmpOp::Exit,
            0xa0 => JmpOp::Jlt,
            0xb0 => JmpOp::Jle,
            0xc0 => JmpOp::Jslt,
            0xd0 => JmpOp::Jsle,
            _ => return None,
        })
    }

    /// All conditional comparison ops (excludes `Ja`, `Call`, `Exit`).
    pub const CONDITIONAL: [JmpOp; 11] = [
        JmpOp::Jeq,
        JmpOp::Jgt,
        JmpOp::Jge,
        JmpOp::Jset,
        JmpOp::Jne,
        JmpOp::Jsgt,
        JmpOp::Jsge,
        JmpOp::Jlt,
        JmpOp::Jle,
        JmpOp::Jslt,
        JmpOp::Jsle,
    ];

    /// The comparison operator used by the verifier log.
    pub fn symbol(self) -> &'static str {
        match self {
            JmpOp::Ja => "goto",
            JmpOp::Jeq => "==",
            JmpOp::Jgt => ">",
            JmpOp::Jge => ">=",
            JmpOp::Jset => "&",
            JmpOp::Jne => "!=",
            JmpOp::Jsgt => "s>",
            JmpOp::Jsge => "s>=",
            JmpOp::Call => "call",
            JmpOp::Exit => "exit",
            JmpOp::Jlt => "<",
            JmpOp::Jle => "<=",
            JmpOp::Jslt => "s<",
            JmpOp::Jsle => "s<=",
        }
    }
}

/// Byte-order target for the `END` ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endianness {
    /// Convert to little-endian (`BPF_TO_LE`, source flag 0).
    Le,
    /// Convert to big-endian (`BPF_TO_BE`, source flag 1).
    Be,
    /// Unconditional byte swap (`ALU64 | END`).
    Swap,
}

/// Pseudo values carried in the `src` field of `LD_IMM64` instructions.
pub mod pseudo {
    /// Plain 64-bit immediate.
    pub const NONE: u8 = 0;
    /// The immediate is a map file descriptor; rewritten to a map pointer.
    pub const MAP_FD: u8 = 1;
    /// The immediate is a map fd; result points at the map's value.
    pub const MAP_VALUE: u8 = 2;
    /// The immediate is a BTF type id; result is a `PTR_TO_BTF_ID`.
    pub const BTF_ID: u8 = 3;
    /// The immediate is an instruction offset of a local function.
    pub const FUNC: u8 = 4;
}

/// Pseudo values carried in the `src` field of `CALL` instructions.
pub mod call_src {
    /// Call to an eBPF helper function identified by `imm`.
    pub const HELPER: u8 = 0;
    /// Call to a local eBPF function at relative instruction offset `imm`.
    pub const PSEUDO_CALL: u8 = 1;
    /// Call to a kernel function (kfunc) whose BTF id is `imm`.
    pub const KFUNC_CALL: u8 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_extraction_covers_all_values() {
        for code in 0u8..=255 {
            let c = Class::of(code);
            assert_eq!(c as u8, code & 0x07);
        }
    }

    #[test]
    fn alu_op_roundtrip() {
        for op in AluOp::BINARY {
            assert_eq!(AluOp::of(op as u8), Some(op));
        }
        assert_eq!(AluOp::of(0xe0), None);
        assert_eq!(AluOp::of(0xf0), None);
    }

    #[test]
    fn jmp_op_roundtrip() {
        for op in JmpOp::CONDITIONAL {
            assert_eq!(JmpOp::of(op as u8), Some(op));
        }
        assert_eq!(JmpOp::of(0xe0), None);
    }

    #[test]
    fn size_bytes() {
        assert_eq!(Size::B.bytes(), 1);
        assert_eq!(Size::H.bytes(), 2);
        assert_eq!(Size::W.bytes(), 4);
        assert_eq!(Size::Dw.bytes(), 8);
        for s in Size::ALL {
            assert_eq!(Size::of(s as u8), s);
        }
    }

    #[test]
    fn class_predicates() {
        assert!(Class::Alu.is_alu());
        assert!(Class::Alu64.is_alu());
        assert!(Class::Jmp.is_jmp());
        assert!(Class::Jmp32.is_jmp());
        assert!(Class::Ldx.is_ldst());
        assert!(!Class::Jmp.is_ldst());
    }
}
