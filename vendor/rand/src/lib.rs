//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the narrow slice of the rand 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` (over `Range` / `RangeInclusive` of the
//! primitive integer types), `gen_bool`, and `gen`.
//!
//! The generator is a SplitMix64 core — statistically fine for fuzzing and
//! tests, deterministic per seed, but **not** stream-compatible with the
//! real `rand` crate and not cryptographically secure.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core producing 64 random bits per step.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output,
/// mirroring `rand::distributions::Standard` coverage for primitives.
pub trait Random {
    /// Samples one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            // The cast is a no-op for the 64-bit instantiations.
            #[allow(clippy::unnecessary_cast)]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                // `span` can be 2^64 for a full-width inclusive range;
                // u128 arithmetic keeps the modulus exact.
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over any [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Samples a uniformly distributed value of a primitive type.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix so that small seeds (0, 1, 2, ...) do not start in
            // visibly correlated states.
            let mut rng = StdRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: i32 = rng.gen_range(-16..16);
            assert!((-16..16).contains(&v));
            let u: usize = rng.gen_range(1..210);
            assert!((1..210).contains(&u));
            let w: u64 = rng.gen_range(3..=8);
            assert!((3..=8).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..4000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((1600..2400).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        // Must not panic (span is 2^64).
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let v: u8 = rng.gen_range(0..=255);
        let _ = v;
    }
}
