//! Helper functions the derive-generated code calls.
//!
//! The derive macro emits struct literals whose fields are filled by
//! [`field`]; the concrete `Deserialize` impl for each field is chosen by
//! type inference at the call site, which is what lets the macro avoid
//! parsing field types entirely.

use crate::{Deserialize, Error, Map, Serialize, Value};

/// A "wrong kind of value" error.
pub fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", got.kind()))
}

/// Interprets `v` as an object, labelled with the type being built.
pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v Map, Error> {
    v.as_object()
        .ok_or_else(|| Error::custom(format!("{ty}: expected object, got {}", v.kind())))
}

/// Interprets `v` as an array, labelled with the variant being built.
pub fn as_array<'v>(v: &'v Value, ty: &str) -> Result<&'v Vec<Value>, Error> {
    v.as_array()
        .ok_or_else(|| Error::custom(format!("{ty}: expected array, got {}", v.kind())))
}

/// Pulls one named field out of an object. A missing key deserializes as
/// `null`, which succeeds exactly for `Option` fields.
pub fn field<T: Deserialize>(obj: &Map, name: &str) -> Result<T, Error> {
    let v = obj.get(name).unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| Error::custom(format!("field {name:?}: {e}")))
}

/// Deserializes one element of a tuple-variant payload array.
pub fn element<T: Deserialize>(items: &[Value], i: usize) -> Result<T, Error> {
    let v = items.get(i).unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| Error::custom(format!("element {i}: {e}")))
}

/// Deserializes a newtype-variant payload.
pub fn newtype<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Checks a tuple-variant payload arity.
pub fn arity(items: &[Value], want: usize, ty: &str) -> Result<(), Error> {
    if items.len() == want {
        Ok(())
    } else {
        Err(Error::custom(format!(
            "{ty}: expected {want} elements, got {}",
            items.len()
        )))
    }
}

/// The single `{"Variant": payload}` entry of an externally tagged enum.
pub fn single_entry<'v>(m: &'v Map, ty: &str) -> Result<(&'v str, &'v Value), Error> {
    let mut it = m.iter();
    match (it.next(), it.next()) {
        (Some((k, v)), None) => Ok((k.as_str(), v)),
        _ => Err(Error::custom(format!(
            "{ty}: expected single-key variant object, got {} keys",
            m.len()
        ))),
    }
}

/// An "unknown variant" error.
pub fn unknown_variant(ty: &str, got: &str) -> Error {
    Error::custom(format!("{ty}: unknown variant {got:?}"))
}

/// Builds the `{"Variant": payload}` form of an externally tagged enum
/// (used by derived `Serialize` impls).
pub fn tagged(variant: &str, payload: Value) -> Value {
    let mut m = Map::new();
    m.insert(variant.to_string(), payload);
    Value::Object(m)
}

/// Serializes one struct field into a map under construction.
pub fn insert_field<T: Serialize + ?Sized>(m: &mut Map, name: &str, v: &T) {
    m.insert(name.to_string(), v.to_value());
}
