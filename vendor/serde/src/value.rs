//! The dynamic value tree every (de)serialization funnels through.
//!
//! Mirrors `serde_json::Value` closely enough that the `serde_json`
//! stand-in simply re-exports these types.

use std::collections::BTreeMap;

/// A JSON-shaped object map. Keys are sorted (BTreeMap), which makes
/// every serialization deterministic.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number: unsigned, signed-negative, or floating point.
///
/// Construction is canonical — non-negative integers always take the
/// `PosInt` form — so derived equality means numeric equality for
/// integers. Floats compare bitwise-as-f64 (`0.5 == 0.5`, `NaN != NaN`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float (never produced for values that parsed as integers).
    Float(f64),
}

impl Number {
    /// A number from an unsigned integer.
    pub fn from_u64(v: u64) -> Number {
        Number::PosInt(v)
    }

    /// A number from a signed integer (canonicalized).
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// A number from a float.
    pub fn from_f64(v: f64) -> Number {
        Number::Float(v)
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(*v).ok(),
            Number::NegInt(v) => Some(*v),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (integers convert lossily beyond 2^53).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(v) => *v as f64,
            Number::NegInt(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }
}

/// A dynamically typed JSON-shaped value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object (keys sorted).
    Object(Map),
}

impl Value {
    /// Object member by key, array element by `get("0")`-style keys not
    /// supported — use [`Value::Array`] indexing for those.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; missing keys and non-objects yield `Null`, like
    /// `serde_json`.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Element access; out-of-range and non-arrays yield `Null`.
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_canonicalization() {
        assert_eq!(Number::from_i64(5), Number::from_u64(5));
        assert_eq!(Number::from_i64(-5).as_i64(), Some(-5));
        assert_eq!(Number::from_u64(u64::MAX).as_i64(), None);
        assert_eq!(Number::from_f64(0.5).as_u64(), None);
    }

    #[test]
    fn index_is_total() {
        let mut m = Map::new();
        m.insert("a".to_string(), Value::Bool(true));
        let v = Value::Object(m);
        assert_eq!(v["a"], Value::Bool(true));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v[3], Value::Null);
        let a = Value::Array(vec![Value::Null, Value::Bool(false)]);
        assert_eq!(a[1], Value::Bool(false));
        assert_eq!(a["x"], Value::Null);
    }
}
