//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a small value-based serialization framework under
//! the familiar crate names. Instead of serde's streaming
//! `Serializer`/`Visitor` machinery, everything funnels through one
//! dynamic [`Value`] tree:
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserialize`] rebuilds `Self` from a borrowed [`Value`].
//!
//! The `serde_json` stand-in supplies the JSON text layer on top, and the
//! `derive` feature re-exports `#[derive(Serialize, Deserialize)]` macros
//! generating externally-tagged enum representations compatible with
//! serde's defaults (unit variant → `"Name"`, newtype → `{"Name": v}`,
//! tuple → `{"Name": [..]}`, struct variant → `{"Name": {..}}`).
//! `#[serde(...)]` attributes are **not** supported; types that need a
//! custom representation implement the traits by hand.

#![warn(missing_docs)]

pub mod de;
pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A deserialization (or, rarely, serialization) failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying the given message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a dynamic value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree, or explains why it cannot.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // The cast is a no-op for the 64-bit instantiation.
            #[allow(clippy::unnecessary_cast)]
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // The cast is a no-op for the 64-bit instantiation.
            #[allow(clippy::unnecessary_cast)]
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map/set key types: rendered as JSON object keys (strings).
pub trait MapKey: Sized {
    /// The string form used as the JSON object key.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<String, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<$t, Error> {
                s.parse::<$t>()
                    .map_err(|e| Error::custom(format!("invalid integer key {s:?}: {e}")))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::type_error("bool", other)),
        }
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = match v {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| de::type_error(stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| de::type_error(stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(de::type_error("f64", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::type_error("string", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

/// Deserializing `&'static str` leaks the parsed string. The workspace
/// only derives `Deserialize` on a few descriptor types with `&'static
/// str` names, and never actually feeds them back through JSON in hot
/// paths; the leak makes those derives compile without a lifetime story.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

/// Same leak-based story as `&'static str`, for static slices.
impl<T: Deserialize> Deserialize for &'static [T] {
    fn from_value(v: &Value) -> Result<&'static [T], Error> {
        Vec::<T>::from_value(v).map(|xs| &*Box::leak(xs.into_boxed_slice()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::type_error("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {len}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<std::rc::Rc<T>, Error> {
        T::from_value(v).map(std::rc::Rc::new)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<std::sync::Arc<T>, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<(), Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(de::type_error("null", other)),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                let items = match v {
                    Value::Array(items) if items.len() == $len => items,
                    Value::Array(items) => {
                        return Err(Error::custom(format!(
                            "expected {}-tuple, got array of {}", $len, items.len()
                        )))
                    }
                    other => return Err(de::type_error("tuple (array)", other)),
                };
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeMap<K, V>, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(de::type_error("object", other)),
        }
    }
}

impl<K: MapKey + Ord + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<std::collections::HashMap<K, V>, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(de::type_error("object", other)),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeSet<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::type_error("array", other)),
        }
    }
}

impl<T: Deserialize + Ord + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<std::collections::HashSet<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::type_error("array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet, HashSet};

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u8::from_value(&42u8.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        assert_eq!(f64::from_value(&0.5f64.to_value()), Ok(0.5));
        assert!(u8::from_value(&300u32.to_value()).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        assert_eq!(Vec::<(u32, String)>::from_value(&v.to_value()), Ok(v));

        let m = BTreeMap::from([(-3i32, 10usize), (5, 20)]);
        let mv = m.to_value();
        // Integer keys become JSON strings.
        match &mv {
            Value::Object(o) => assert!(o.contains_key("-3")),
            other => panic!("not an object: {other:?}"),
        }
        assert_eq!(BTreeMap::<i32, usize>::from_value(&mv), Ok(m));

        let s = BTreeSet::from([3u64, 1, 2]);
        assert_eq!(BTreeSet::<u64>::from_value(&s.to_value()), Ok(s));

        let hs: HashSet<u64> = HashSet::from([9, 4, 6]);
        // HashSet serializes sorted.
        assert_eq!(
            hs.to_value(),
            Value::Array(vec![4u64.to_value(), 6u64.to_value(), 9u64.to_value()])
        );
    }

    #[test]
    fn option_and_arrays() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&7u32.to_value()), Ok(Some(7)));
        let arr = [1u8, 2, 3];
        assert_eq!(<[u8; 3]>::from_value(&arr.to_value()), Ok(arr));
        assert!(<[u8; 4]>::from_value(&arr.to_value()).is_err());
    }

    #[test]
    fn static_str_leak_path() {
        let v = Value::String("leaked".to_string());
        let s: &'static str = <&'static str>::from_value(&v).unwrap();
        assert_eq!(s, "leaked");
    }
}
