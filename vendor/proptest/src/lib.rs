//! Offline stand-in for `proptest`.
//!
//! Implements the sampling half of the proptest API this workspace uses:
//! [`Strategy`] with `prop_map`, `any::<T>()`, integer-range strategies,
//! tuple strategies, [`collection::vec`], `prop_oneof!`, and the
//! [`proptest!`] test macro. Each test runs a fixed number of cases from
//! a deterministic per-test seed. There is **no shrinking** — a failing
//! case panics with the sampled inputs via the assertion message.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// Number of sampled cases per `proptest!` test function.
pub const CASES: usize = 192;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            // The cast is a no-op for the 64-bit instantiations.
            #[allow(clippy::unnecessary_cast)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Always produces clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// The strategy built by [`prop_oneof!`]: picks one branch uniformly.
pub struct OneOf<V> {
    /// The candidate strategies.
    pub options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size bound for generated collections.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// A deterministic per-test seed derived from the test path, so distinct
/// tests explore distinct streams but every run repeats exactly.
pub fn seed_for(test_path: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strategy)),+];
        $crate::OneOf { options }
    }};
}

/// Asserts inside a `proptest!` body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(__seed);
            for __case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{seed_for, TestRng};
    use rand::SeedableRng;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (0u8..16).sample(&mut rng);
            assert!(v < 16);
            let w = (1usize..80).sample(&mut rng);
            assert!((1..80).contains(&w));
            let _ = any::<i16>().sample(&mut rng);
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        #[derive(Clone, PartialEq)]
        enum Which {
            A,
            B,
            C,
        }
        let s = prop_oneof![
            (0u8..4).prop_map(|_| Which::A),
            any::<bool>().prop_map(|_| Which::B),
            Just(Which::C),
        ];
        let mut rng = TestRng::seed_from_u64(5);
        let mut hits = [false; 3];
        for _ in 0..256 {
            match s.sample(&mut rng) {
                Which::A => hits[0] = true,
                Which::B => hits[1] = true,
                Which::C => hits[2] = true,
            }
        }
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn vec_strategy_sizes() {
        let s = crate::collection::vec(any::<u8>(), 1..9);
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..9).contains(&v.len()));
        }
    }

    #[test]
    fn seeds_differ_per_test_path() {
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
        assert_eq!(seed_for("x"), seed_for("x"));
    }

    proptest! {
        /// The macro itself: tuple + map + multiple args.
        #[test]
        fn macro_smoke(x in 0u8..16, (a, b) in (any::<u8>(), 1u16..5)) {
            prop_assert!(x < 16);
            prop_assert!((1..5).contains(&b), "b = {b}, a = {a}");
            prop_assert_eq!(x % 16, x);
        }
    }
}
