//! Compact and pretty JSON printers.

use serde::value::{Number, Value};

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                // `{:?}` keeps a `.0` on integral floats, so the value
                // parses back as a float (serde_json prints `30.0` too).
                out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => push_number(out, n),
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                push_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// One-line JSON.
pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Two-space-indented JSON.
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}
