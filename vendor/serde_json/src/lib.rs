//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored `serde` crate's [`Value`] tree and adds the
//! JSON text layer: a recursive-descent parser, compact and pretty
//! printers, the `to_*`/`from_*` entry points, and a simplified [`json!`]
//! macro (values must be Rust expressions — nest `json!` calls for
//! object/array literals inside objects, which is what this workspace
//! does anyway).

#![warn(missing_docs)]

use std::io::Write;

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

mod parse;
mod print;

pub use parse::from_str_value;

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Serializes to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serializes to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: Write, T: serde::Serialize>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(print::compact(&value.to_value()).as_bytes())
        .map_err(|e| Error::custom(format!("write failed: {e}")))
}

/// Parses a typed value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse::from_str_value(s)?)
}

/// Parses a typed value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from a literal. Object values and array elements
/// are Rust expressions serialized through [`serde::Serialize`]; nest
/// `json!` calls for inner JSON object literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        let mut __m = $crate::Map::new();
        $( __m.insert(($key).to_string(), $crate::json!($value)); )*
        $crate::Value::Object(__m)
    }};
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let iters = 500usize;
        let tools = vec![json!({ "name": "bvf", "rate": 0.98 })];
        let v =
            json!({ "iters": iters, "tools": tools, "ok": true, "none": (), "nested": [1, 2, 3] });
        assert_eq!(v["iters"].as_u64(), Some(500));
        assert_eq!(v["tools"][0]["name"].as_str(), Some("bvf"));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert!(v["none"].is_null());
        assert_eq!(v["nested"][2].as_u64(), Some(3));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(7u8).as_u64(), Some(7));
    }

    #[test]
    fn string_roundtrip_all_shapes() {
        let v = json!({
            "s": "he\"llo\n\t\\ ☃",
            "neg": -42,
            "big": u64::MAX,
            "f": 2.5,
            "intlike": 30.0f64,
            "arr": [true, false],
            "obj": json!({ "k": 1 })
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        // Float values keep a decimal point so they stay floats.
        assert!(text.contains("30.0"));
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v: Value = from_str(r#"{"a": "Aé😀", "b": [1e3, -2.5e-1]}"#).unwrap();
        assert_eq!(v["a"].as_str(), Some("Aé😀"));
        assert_eq!(v["b"][0].as_f64(), Some(1000.0));
        assert_eq!(v["b"][1].as_f64(), Some(-0.25));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn writer_and_slice() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &json!({ "x": 1 })).unwrap();
        let v: Value = from_slice(&buf).unwrap();
        assert_eq!(v["x"].as_u64(), Some(1));
    }
}
