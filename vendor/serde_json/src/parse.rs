//! A recursive-descent JSON parser producing [`Value`] trees.

use serde::value::{Map, Number, Value};
use serde::Error;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (surrounded by optional whitespace) into a
/// [`Value`].
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.error(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the last digit; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        let n = if is_float {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|_| self.error("invalid number"))?,
            )
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Number::from_i64(v),
                // Magnitude beyond i64: degrade to float like serde_json's
                // arbitrary-precision-off mode does for our purposes.
                Err(_) => Number::from_f64(
                    text.parse::<f64>()
                        .map_err(|_| self.error("invalid number"))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::from_u64(v),
                Err(_) => Number::from_f64(
                    text.parse::<f64>()
                        .map_err(|_| self.error("invalid number"))?,
                ),
            }
        };
        Ok(Value::Number(n))
    }
}
