//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! No `syn`/`quote` are available offline, so the input is parsed by
//! hand from the raw token stream and the impl is generated as a string.
//! Two tricks keep this tractable:
//!
//! - Field **types are never parsed**: generated `Deserialize` code
//!   fills each field with `serde::de::field(obj, "name")?` inside a
//!   struct literal, letting type inference pick the right impl.
//! - Enums use serde's default externally tagged representation, so
//!   codegen only needs variant names and arities.
//!
//! `#[serde(...)]` attributes are rejected with a compile error — types
//! needing a custom representation implement the traits by hand.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a `#[derive]` input turned out to be.
enum Kind {
    /// `struct S;`
    UnitStruct,
    /// `struct S(A, B);` — arity.
    TupleStruct(usize),
    /// `struct S { a: A, ... }` — field names.
    Struct(Vec<String>),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Skips attributes at `i`, panicking on `#[serde(...)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let is_serde = g.stream().into_iter().next().is_some_and(
                            |t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "serde"),
                        );
                        if is_serde {
                            panic!(
                                "#[serde(...)] attributes are not supported by the vendored \
                                 derive; implement Serialize/Deserialize by hand"
                            );
                        }
                        i += 2;
                        continue;
                    }
                }
                panic!("malformed attribute");
            }
            _ => break,
        }
    }
    i
}

/// Skips a `pub` / `pub(...)` visibility marker at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(
            tokens.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            i += 1;
        }
    }
    i
}

/// Splits a token slice on top-level commas. When `track_angles` is set,
/// commas inside `<...>` generic arguments are not split points (needed
/// for field types); `->` is recognized so its `>` does not unbalance
/// the depth.
fn split_commas(tokens: &[TokenTree], track_angles: bool) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth: i64 = 0;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if track_angles && p.as_char() == '-' => {
                // `->`: consume both tokens without touching depth.
                cur.push(tokens[i].clone());
                if matches!(tokens.get(i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                    cur.push(tokens[i + 1].clone());
                    i += 1;
                }
            }
            TokenTree::Punct(p) if track_angles && p.as_char() == '<' => {
                depth += 1;
                cur.push(tokens[i].clone());
            }
            TokenTree::Punct(p) if track_angles && p.as_char() == '>' => {
                depth -= 1;
                cur.push(tokens[i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            t => cur.push(t.clone()),
        }
        i += 1;
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts named-field names from the tokens of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_commas(&tokens, true)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let i = skip_vis(&chunk, skip_attrs(&chunk, 0));
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

/// Counts the fields of a paren (tuple) group.
fn parse_tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_commas(&tokens, true)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    // Variant payloads are token groups (atomic), so plain top-level
    // comma splitting is safe even with `= 1 << 3` discriminants.
    split_commas(&tokens, false)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let i = skip_attrs(&chunk, 0);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let payload = match chunk.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    match parse_tuple_arity(g.stream()) {
                        1 => Payload::Newtype,
                        n => Payload::Tuple(n),
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Payload::Struct(parse_named_fields(g.stream()))
                }
                // `= discriminant` or nothing.
                _ => Payload::Unit,
            };
            Variant { name, payload }
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic types ({name})");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(parse_tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Struct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "::serde::de::insert_field(&mut __m, \"{f}\", &self.{f});\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.payload {
                    Payload::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Payload::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => \
                         ::serde::de::tagged(\"{vn}\", ::serde::Serialize::to_value(__f0)),\n"
                    )),
                    Payload::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::de::tagged(\"{vn}\", \
                             ::serde::Value::Array(vec![{}])),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "::serde::de::insert_field(&mut __m, \"{f}\", {f});\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             {inserts}\
                             ::serde::de::tagged(\"{vn}\", ::serde::Value::Object(__m))\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!(
            "match __v {{\n\
             ::serde::Value::Null => ::core::result::Result::Ok({name}),\n\
             __other => ::core::result::Result::Err(::serde::de::type_error(\"null\", __other)),\n\
             }}"
        ),
        Kind::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::de::newtype(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::element(__items, {i})?"))
                .collect();
            format!(
                "let __items = ::serde::de::as_array(__v, \"{name}\")?;\n\
                 ::serde::de::arity(__items, {n}, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__obj, \"{f}\")?"))
                .collect();
            format!(
                "let __obj = ::serde::de::as_object(__v, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.payload {
                    Payload::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Payload::Newtype => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::de::newtype(__payload)?)),\n"
                    )),
                    Payload::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de::element(__items, {i})?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = ::serde::de::as_array(__payload, \"{name}::{vn}\")?;\n\
                             ::serde::de::arity(__items, {n}, \"{name}::{vn}\")?;\n\
                             ::core::result::Result::Ok({name}::{vn}({}))\n\
                             }}\n",
                            elems.join(", ")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de::field(__obj, \"{f}\")?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __obj = ::serde::de::as_object(__payload, \"{name}::{vn}\")?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{ {} }})\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(\
                 ::serde::de::unknown_variant(\"{name}\", __other)),\n\
                 }},\n\
                 ::serde::Value::Object(__m) => {{\n\
                 let (__tag, __payload) = ::serde::de::single_entry(__m, \"{name}\")?;\n\
                 match __tag {{\n\
                 {payload_arms}\
                 __other => ::core::result::Result::Err(\
                 ::serde::de::unknown_variant(\"{name}\", __other)),\n\
                 }}\n\
                 }}\n\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"{name}: expected string or object, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::core::result::Result<{name}, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

/// Derives the vendored value-based `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl failed to parse")
}

/// Derives the vendored value-based `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl failed to parse")
}
