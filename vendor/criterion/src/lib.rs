//! Offline stand-in for `criterion`.
//!
//! Provides the small API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple adaptive wall-clock loop instead of criterion's statistical
//! machinery. Each benchmark reports the mean time per iteration of the
//! largest measured batch to stdout.

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// How a batched benchmark's setup output is grouped (accepted for API
/// compatibility; the stand-in sizes batches adaptively regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the final batch.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, doubling the batch size until the batch takes
    /// long enough to trust the clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || n >= 1 << 24 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            n *= 2;
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || n >= 1 << 20 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            n *= 2;
        }
    }
}

/// The benchmark registry/driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let ns = b.ns_per_iter;
        if ns >= 1_000_000.0 {
            println!("{name:<40} {:>12.3} ms/iter", ns / 1_000_000.0);
        } else if ns >= 1_000.0 {
            println!("{name:<40} {:>12.3} µs/iter", ns / 1_000.0);
        } else {
            println!("{name:<40} {ns:>12.1} ns/iter");
        }
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routines() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| {
                    runs += 1;
                    v.iter().map(|&x| x as u64).sum::<u64>()
                },
                BatchSize::SmallInput,
            )
        });
        assert!(runs > 0);
    }
}
